"""Cryptographic substrate.

The reproduction needs cryptography for two things:

1. *Functionality*: blocks are hash-chained, proposals are signed, quorum
   certificates aggregate f+1 signatures, and equivocation is detected by
   verifying two conflicting signed proposals.  The schemes here are real in
   the sense that forging a signature for a key you do not hold fails
   verification inside the simulation.
2. *Energy accounting*: every sign/verify/hash operation is priced using the
   per-operation Joule costs the paper measured on the NUCLEO-F401RE test
   bed (Table 2), via :mod:`repro.crypto.energy_costs`.
"""

from repro.crypto.hashing import HashFunction, sha256_hex
from repro.crypto.keys import KeyPair, KeyStore
from repro.crypto.signatures import (
    Signature,
    SignatureScheme,
    SchemeSpec,
    make_scheme,
    available_schemes,
)
from repro.crypto.energy_costs import (
    SIGNATURE_ENERGY_TABLE,
    SignatureEnergyCost,
    signature_cost,
    HMAC_COST,
    RSA_1024,
    RSA_2048,
    ECDSA_SECP256K1,
    ECDSA_SECP256R1,
)

__all__ = [
    "HashFunction",
    "sha256_hex",
    "KeyPair",
    "KeyStore",
    "Signature",
    "SignatureScheme",
    "SchemeSpec",
    "make_scheme",
    "available_schemes",
    "SIGNATURE_ENERGY_TABLE",
    "SignatureEnergyCost",
    "signature_cost",
    "HMAC_COST",
    "RSA_1024",
    "RSA_2048",
    "ECDSA_SECP256K1",
    "ECDSA_SECP256R1",
]
