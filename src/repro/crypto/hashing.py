"""Hashing utilities with energy-aware cost reporting.

The paper instantiates its MAC and hash primitives with SHA-256 and reports
that "the cost of hashing increased linearly with message size".  The
:class:`HashFunction` wrapper exposes both the digest and the energy that a
CPS node would spend computing it, so the energy meter can charge hashing
where protocols hash blocks (hash-chaining, voting on H(prop)).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Baseline energy (Joules) for hashing an empty message on the CPS board.
#: Derived from the paper's HMAC figure (0.19 J), which is dominated by the
#: underlying SHA-256 invocation on a short input.
HASH_BASE_ENERGY_J = 0.00019

#: Incremental energy (Joules) per byte hashed.  The paper reports linear
#: growth with message size; this slope keeps a 1 kB hash well under the
#: cost of a signature, matching the measured ordering of primitives.
HASH_PER_BYTE_ENERGY_J = 0.0000002


def _serialize_canonical(payload: Any) -> bytes:
    """The raw (uncached) canonical serialization."""
    if isinstance(payload, bytes):
        return payload
    if isinstance(payload, str):
        return payload.encode("utf-8")
    try:
        return json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    except (TypeError, ValueError):
        return repr(payload).encode("utf-8")


def _value_key(payload: tuple) -> Optional[tuple]:
    """A collision-safe cache key for a tuple of primitives, or ``None``.

    Only tuples of immutable primitives qualify: their canonical bytes are
    a pure function of their value and they can never be mutated after the
    fact.  Lists/dicts are rejected — a caller could mutate them between
    calls, and the cache must never return stale bytes for mutated data.

    The key embeds the leaf *types* because Python dict keys conflate
    ``1``, ``1.0`` and ``True`` (equal, same hash) while their JSON
    serializations differ — an untagged key would let a signature over
    ``("x", 1)`` verify against ``("x", True)``.  Floats key on their
    ``repr`` (the serialized form) because ``0.0 == -0.0`` under dict
    equality while their JSON differs too.
    """
    parts = []
    for item in payload:
        if item is None or isinstance(item, (str, bytes)):
            parts.append(item)
        elif isinstance(item, float) and not isinstance(item, bool):
            parts.append(("float", repr(item)))
        elif isinstance(item, int):  # covers bool (subclass of int)
            parts.append((type(item).__name__, item))
        elif isinstance(item, tuple):
            sub = _value_key(item)
            if sub is None:
                return None
            parts.append(("tuple", sub))
        else:
            return None
    return tuple(parts)


def is_deeply_immutable(value: Any) -> bool:
    """Whether ``value`` can never change, all the way down.

    A frozen dataclass wrapper is not enough — a frozen dataclass holding a
    list can still be mutated through the list.  Only primitives, tuples /
    frozensets of immutables, and frozen dataclasses whose *fields* are
    recursively immutable qualify.  The verdict depends only on types and
    structure, so it is stable for a given object and safe to memoize.
    """
    if value is None or isinstance(value, (str, bytes, int, float, bool)):
        return True
    if isinstance(value, (tuple, frozenset)):
        return all(is_deeply_immutable(item) for item in value)
    params = getattr(type(value), "__dataclass_params__", None)
    if params is not None and params.frozen:
        return all(
            is_deeply_immutable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        )
    return False


def _is_identity_cacheable(payload: Any) -> bool:
    """Whether ``payload`` may be cached by object identity.

    Deeply immutable frozen dataclasses (protocol messages, blocks,
    signatures, QCs) cannot change after construction, so one serialization
    per *instance* is safe.  Anything mutable — including a frozen wrapper
    around a mutable field — must be re-serialized on every call.
    """
    params = getattr(type(payload), "__dataclass_params__", None)
    return params is not None and params.frozen and is_deeply_immutable(payload)


class CanonicalCache:
    """Flyweight store for canonical bytes / digests / wire sizes.

    Hot paths serialize the same message once per hop and once per
    sign/verify; this cache collapses that to once per message object:

    * **identity-keyed, weak**: frozen dataclass instances are keyed by
      ``id()`` with a weak reference so entries vanish when the message is
      garbage collected (bounded memory over long runs);
    * **value-keyed, bounded**: small primitive tuples (the ``("view",
      type, view)`` / ``("data", digest, view)`` signing payloads) are keyed
      by value, so the same logical payload hits across all n verifiers;
    * mutable payloads (dicts, lists, arbitrary objects) are never cached —
      a payload mutated after signing must re-serialize and fail
      verification.

    Set :attr:`enabled` to ``False`` to force recomputation everywhere (the
    ``repro.perf`` legacy mode uses this to measure the uncached baseline).
    """

    def __init__(self, max_value_entries: int = 8192) -> None:
        self.enabled = True
        self.max_value_entries = max_value_entries
        # id(obj) -> (weakref, canonical bytes, hex digest | None)
        self._by_id: Dict[int, Tuple[Any, bytes, Optional[str]]] = {}
        self._by_value: Dict[Any, bytes] = {}
        self._value_digests: Dict[Any, str] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- plumbing
    def _identity_entry(self, payload: Any) -> Optional[Tuple[Any, bytes, Optional[str]]]:
        entry = self._by_id.get(id(payload))
        if entry is not None and entry[0]() is payload:
            return entry
        return None

    def _store_identity(self, payload: Any, data: bytes, digest: Optional[str]) -> None:
        key = id(payload)

        def _evict(_ref: Any, *, _key: int = key, _cache: Dict = self._by_id) -> None:
            _cache.pop(_key, None)

        try:
            ref = weakref.ref(payload, _evict)
        except TypeError:  # not weak-referenceable: skip caching
            return
        self._by_id[key] = (ref, data, digest)

    def _bounded_store(self, table: Dict, key: Any, value: Any) -> None:
        if len(table) >= self.max_value_entries:
            table.clear()
        table[key] = value

    # -------------------------------------------------------------- queries
    def bytes_for(self, payload: Any) -> bytes:
        """Canonical bytes of ``payload``, cached when provably safe."""
        if not self.enabled:
            return _serialize_canonical(payload)
        if isinstance(payload, bytes):
            return payload
        if isinstance(payload, str):
            return payload.encode("utf-8")
        entry = self._identity_entry(payload)
        if entry is not None:
            self.hits += 1
            return entry[1]
        if isinstance(payload, tuple):
            key = _value_key(payload)
            if key is not None:
                cached = self._by_value.get(key)
                if cached is not None:
                    self.hits += 1
                    return cached
                data = _serialize_canonical(payload)
                self.misses += 1
                self._bounded_store(self._by_value, key, data)
                return data
        data = _serialize_canonical(payload)
        if _is_identity_cacheable(payload):
            self.misses += 1
            self._store_identity(payload, data, None)
        return data

    def digest_for(self, payload: Any) -> str:
        """SHA-256 hex digest of the canonical bytes, cached alongside them."""
        if not self.enabled:
            return hashlib.sha256(_serialize_canonical(payload)).hexdigest()
        entry = self._identity_entry(payload)
        if entry is not None and entry[2] is not None:
            self.hits += 1
            return entry[2]
        if isinstance(payload, tuple):
            key = _value_key(payload)
            if key is not None:
                cached = self._value_digests.get(key)
                if cached is not None:
                    self.hits += 1
                    return cached
                digest = hashlib.sha256(self.bytes_for(payload)).hexdigest()
                self._bounded_store(self._value_digests, key, digest)
                return digest
        data = self.bytes_for(payload)
        digest = hashlib.sha256(data).hexdigest()
        if _is_identity_cacheable(payload):
            self._store_identity(payload, data, digest)
        return digest

    def wire_size_for(self, payload: Any) -> int:
        """Byte length of the canonical serialization (cached transitively)."""
        return len(self.bytes_for(payload))

    def precompute(self, payload: Any) -> bytes:
        """Eagerly serialize + digest a message (the flyweight warm-up hook).

        Message constructors call this once so every later hop, signature
        check and wire-size query is a dictionary lookup.
        """
        data = self.bytes_for(payload)
        if _is_identity_cacheable(payload):
            entry = self._identity_entry(payload)
            if entry is None or entry[2] is None:
                self._store_identity(payload, data, hashlib.sha256(data).hexdigest())
        return data

    # ------------------------------------------------------------ lifecycle
    def clear(self) -> None:
        """Drop every cached entry (tests and benchmark isolation)."""
        self._by_id.clear()
        self._by_value.clear()
        self._value_digests.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for perf reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "identity_entries": len(self._by_id),
            "value_entries": len(self._by_value),
        }


#: Process-wide flyweight used by the crypto and network hot paths.
canonical_cache = CanonicalCache()


def canonical_bytes(payload: Any) -> bytes:
    """Serialize an arbitrary (JSON-able or reprable) payload deterministically.

    Routed through :data:`canonical_cache`, so repeated serialization of the
    same immutable message is a lookup instead of a ``json.dumps``.
    """
    return canonical_cache.bytes_for(payload)


def sha256_hex(payload: Any) -> str:
    """SHA-256 hex digest of a canonical serialization of ``payload``."""
    return canonical_cache.digest_for(payload)


@dataclass(frozen=True)
class HashResult:
    """A digest together with the energy spent producing it."""

    digest: str
    input_size_bytes: int
    energy_joules: float


class HashFunction:
    """SHA-256 with per-invocation energy accounting."""

    name = "sha256"

    def __init__(
        self,
        base_energy_j: float = HASH_BASE_ENERGY_J,
        per_byte_energy_j: float = HASH_PER_BYTE_ENERGY_J,
    ) -> None:
        self.base_energy_j = base_energy_j
        self.per_byte_energy_j = per_byte_energy_j
        self.invocations = 0
        self.total_bytes = 0

    def energy_for_size(self, size_bytes: int) -> float:
        """Energy (J) to hash a message of ``size_bytes`` bytes."""
        if size_bytes < 0:
            raise ValueError("message size cannot be negative")
        return self.base_energy_j + self.per_byte_energy_j * size_bytes

    def digest(self, payload: Any) -> HashResult:
        """Hash ``payload`` and report both digest and energy."""
        data = canonical_bytes(payload)
        self.invocations += 1
        self.total_bytes += len(data)
        return HashResult(
            digest=hashlib.sha256(data).hexdigest(),
            input_size_bytes=len(data),
            energy_joules=self.energy_for_size(len(data)),
        )
