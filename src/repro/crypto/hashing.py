"""Hashing utilities with energy-aware cost reporting.

The paper instantiates its MAC and hash primitives with SHA-256 and reports
that "the cost of hashing increased linearly with message size".  The
:class:`HashFunction` wrapper exposes both the digest and the energy that a
CPS node would spend computing it, so the energy meter can charge hashing
where protocols hash blocks (hash-chaining, voting on H(prop)).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

#: Baseline energy (Joules) for hashing an empty message on the CPS board.
#: Derived from the paper's HMAC figure (0.19 J), which is dominated by the
#: underlying SHA-256 invocation on a short input.
HASH_BASE_ENERGY_J = 0.00019

#: Incremental energy (Joules) per byte hashed.  The paper reports linear
#: growth with message size; this slope keeps a 1 kB hash well under the
#: cost of a signature, matching the measured ordering of primitives.
HASH_PER_BYTE_ENERGY_J = 0.0000002


def canonical_bytes(payload: Any) -> bytes:
    """Serialize an arbitrary (JSON-able or reprable) payload deterministically."""
    if isinstance(payload, bytes):
        return payload
    if isinstance(payload, str):
        return payload.encode("utf-8")
    try:
        return json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    except (TypeError, ValueError):
        return repr(payload).encode("utf-8")


def sha256_hex(payload: Any) -> str:
    """SHA-256 hex digest of a canonical serialization of ``payload``."""
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


@dataclass(frozen=True)
class HashResult:
    """A digest together with the energy spent producing it."""

    digest: str
    input_size_bytes: int
    energy_joules: float


class HashFunction:
    """SHA-256 with per-invocation energy accounting."""

    name = "sha256"

    def __init__(
        self,
        base_energy_j: float = HASH_BASE_ENERGY_J,
        per_byte_energy_j: float = HASH_PER_BYTE_ENERGY_J,
    ) -> None:
        self.base_energy_j = base_energy_j
        self.per_byte_energy_j = per_byte_energy_j
        self.invocations = 0
        self.total_bytes = 0

    def energy_for_size(self, size_bytes: int) -> float:
        """Energy (J) to hash a message of ``size_bytes`` bytes."""
        if size_bytes < 0:
            raise ValueError("message size cannot be negative")
        return self.base_energy_j + self.per_byte_energy_j * size_bytes

    def digest(self, payload: Any) -> HashResult:
        """Hash ``payload`` and report both digest and energy."""
        data = canonical_bytes(payload)
        self.invocations += 1
        self.total_bytes += len(data)
        return HashResult(
            digest=hashlib.sha256(data).hexdigest(),
            input_size_bytes=len(data),
            energy_joules=self.energy_for_size(len(data)),
        )
