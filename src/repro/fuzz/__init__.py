"""Closed-loop fault-schedule fuzzing: generate → detect → shrink → corpus.

The scenario matrix's :data:`~repro.testkit.scenarios.FAULT_LIBRARY` is
hand-curated — every schedule in it was written by a person, so the
scenario surface grows only as fast as we type.  This package turns the
five invariants into a bug-finding flywheel instead:

* :class:`~repro.fuzz.generator.ScheduleGenerator` composes seeded random
  :class:`~repro.testkit.faults.FaultSchedule`\\ s from the existing fault
  atoms, rejecting anything that violates the ``2f < n`` quorum bound or
  the Lemma A.5 strong-connectivity condition *before* it is ever run;
* :class:`~repro.fuzz.detect.Detector` runs each schedule through the
  session API across every protocol and evaluates the full invariant
  battery (plus harness-level failure modes: local safety violations and
  livelocks surface as findings, not detector crashes);
* :class:`~repro.fuzz.shrink.Shrinker` greedily reduces a failing
  schedule to a minimal reproducer (drop-atom → narrow-window →
  shrink-victim-set passes, re-verifying the failure after every step);
* :class:`~repro.fuzz.corpus.Corpus` persists survivors as canonical
  :class:`~repro.eval.runner.DeploymentSpec` JSON so CI replays them as a
  growing regression suite (``tests/corpus/``);
* :class:`~repro.fuzz.fuzzer.Fuzzer` is the closed loop over all four.

Everything is deterministic for a fixed seed: the same seed produces the
same schedules, the same verdicts and the same shrunk reproducers, byte
for byte (pinned by the reproducibility tests).
"""

from repro.fuzz.corpus import Corpus, CorpusEntry, canonical_json, replay_entry
from repro.fuzz.detect import Detection, Detector, ProtocolVerdict
from repro.fuzz.fuzzer import Finding, FuzzReport, Fuzzer
from repro.fuzz.generator import DEFAULT_KINDS, FuzzConfig, ScheduleGenerator
from repro.fuzz.shrink import Shrinker, ShrinkResult

__all__ = [
    "Corpus",
    "CorpusEntry",
    "canonical_json",
    "replay_entry",
    "Detection",
    "Detector",
    "ProtocolVerdict",
    "Finding",
    "FuzzReport",
    "Fuzzer",
    "DEFAULT_KINDS",
    "FuzzConfig",
    "ScheduleGenerator",
    "Shrinker",
    "ShrinkResult",
]
