"""The reproducer corpus: shrunk findings persisted as replayable JSON.

Every schedule that survives the generate → detect → shrink loop is worth
keeping: it once demonstrated a bug (in a planted mutant or in the real
code), and replaying it forever is how the scenario surface grows beyond
the hand-curated matrix.  A corpus entry is one JSON file holding

* ``spec`` — the full :meth:`~repro.eval.runner.DeploymentSpec.to_dict`
  of the shrunk reproducer (protocol, deployment, fault schedule);
* ``expect`` — what replaying it on the *current* code should produce:
  ``"clean"`` (the bug is fixed or was planted in a mutant; the run must
  satisfy every invariant — the regression direction) or ``"violation"``
  (a live, unfixed finding; the run must still fail);
* ``found`` — provenance: the fuzz seed, the mutant (if any), and the
  (protocol, invariant) pairs that failed when it was found.

Entries are written with a canonical JSON encoding and named by a content
hash, so regenerating the corpus from the same findings is byte-stable
and collisions are self-evident.  ``tests/corpus/`` holds the committed
corpus; its pytest collector replays every entry on every CI run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.core.ledger import SafetyViolation
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.testkit.invariants import DEFAULT_INVARIANTS, Evidence, InvariantReport
from repro.testkit.trace import TraceRecorder

#: Corpus entry schema version (bump on incompatible changes).
CORPUS_FORMAT = 1


def canonical_json(payload: object) -> str:
    """The one JSON encoding used for hashing and on-disk entries."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _content_id(payload: dict) -> str:
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return digest[:10]


@dataclass
class CorpusEntry:
    """One persisted reproducer."""

    entry_id: str
    spec: dict
    expect: str = "clean"
    found: dict = field(default_factory=dict)
    note: str = ""
    path: Optional[Path] = None

    @classmethod
    def load(cls, path: Path) -> "CorpusEntry":
        data = json.loads(Path(path).read_text())
        fmt = data.get("format")
        if fmt != CORPUS_FORMAT:
            raise ValueError(f"{path}: unsupported corpus format {fmt!r}")
        expect = data.get("expect")
        if expect not in ("clean", "violation"):
            raise ValueError(f"{path}: expect must be 'clean' or 'violation', got {expect!r}")
        return cls(
            entry_id=data["id"],
            spec=data["spec"],
            expect=expect,
            found=data.get("found", {}),
            note=data.get("note", ""),
            path=Path(path),
        )

    def build_spec(self) -> DeploymentSpec:
        """The deployment spec this entry replays."""
        return DeploymentSpec.from_dict(self.spec)

    def payload(self) -> dict:
        return {
            "format": CORPUS_FORMAT,
            "id": self.entry_id,
            "spec": self.spec,
            "expect": self.expect,
            "found": self.found,
            "note": self.note,
        }


class Corpus:
    """A directory of corpus entries (one JSON file each)."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # ---------------------------------------------------------------- reading
    def entries(self) -> List[CorpusEntry]:
        """Every entry, sorted by file name (stable collection order)."""
        if not self.root.is_dir():
            return []
        return [
            CorpusEntry.load(path) for path in sorted(self.root.glob("*.json"))
        ]

    # ---------------------------------------------------------------- writing
    def add(
        self,
        spec_dict: dict,
        *,
        expect: str = "violation",
        found: Optional[dict] = None,
        note: str = "",
        slug: str = "reproducer",
    ) -> Path:
        """Persist one reproducer; returns the written path.

        Idempotent for identical content: the file name embeds a hash of
        (spec, expect), so re-adding the same reproducer overwrites the
        same file byte for byte instead of accumulating duplicates.
        """
        if expect not in ("clean", "violation"):
            raise ValueError(f"expect must be 'clean' or 'violation', got {expect!r}")
        entry_id = _content_id({"spec": spec_dict, "expect": expect})
        entry = CorpusEntry(
            entry_id=entry_id,
            spec=spec_dict,
            expect=expect,
            found=dict(found or {}),
            note=note,
        )
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{slug}-{entry_id}.json"
        path.write_text(canonical_json(entry.payload()))
        entry.path = path
        return path


def replay_entry(
    entry: CorpusEntry, *, invariants: Sequence = DEFAULT_INVARIANTS, max_events: int = 2_000_000
) -> Tuple[List[InvariantReport], List[InvariantReport]]:
    """Replay one corpus entry; returns (all reports, failing reports).

    The caller asserts the direction: for ``expect == "clean"`` the
    failing list must be empty; for ``expect == "violation"`` it must not
    (and should still contain the recorded (protocol, invariant) pairs).
    """
    spec = entry.build_spec()
    label = f"corpus:{entry.entry_id}"
    runner = ProtocolRunner(max_events=max_events, recorder=TraceRecorder())
    try:
        result = runner.run(spec)
    except SafetyViolation as violation:
        # A replica refused a conflicting commit mid-run — the same early
        # agreement failure the detector maps onto a violation report.
        report = InvariantReport("agreement", False, f"[agreement @ {label}] {violation}")
        return [report], [report]
    evidence = Evidence(spec=spec, result=result, trace=result.trace, label=label)
    reports = [invariant.run(evidence) for invariant in invariants]
    return reports, [report for report in reports if not report.ok]
