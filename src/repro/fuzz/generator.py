"""Seeded, feasibility-checked random fault-schedule generation.

:class:`ScheduleGenerator` composes random
:class:`~repro.testkit.faults.FaultSchedule`\\ s from the testkit's fault
atoms — crash/stall/equivocate/silent behaviours, relay-drop, partition
and crash-recover windows, and the adaptive
:class:`LeaderFollowingCrash` — under
a :class:`FuzzConfig` describing the deployment the schedules will run
against.

Candidates are *rejection-sampled*: a draw that puts two Byzantine
behaviours on one node, breaks the ``2f < n`` quorum bound, or
disconnects the correct nodes under some concurrently impaired set
(:func:`~repro.testkit.scenarios.schedule_feasibility`, the same gate the
scenario matrix skips cells with) is discarded and redrawn.  Every
schedule the generator *emits* is therefore guaranteed runnable — the
detector never wastes a run on an infeasible adversary, and an invariant
violation found downstream is a real finding, not a provisioning artifact.

Determinism: all randomness flows through one :class:`SeededRNG` stream
derived from the fuzz seed, and every knob (time quantum, horizon, atom
kinds) lives on the config — the same (config, seed) pair reproduces the
same schedule sequence byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.eval.runner import PROTOCOLS, DeploymentSpec
from repro.sim.rng import SeededRNG, derive_seed
from repro.testkit import faults
from repro.testkit.scenarios import schedule_feasibility

#: Atom kinds the generator draws from by default (FAULT_KINDS names).
DEFAULT_KINDS: Tuple[str, ...] = (
    "CrashAt",
    "StallAt",
    "EquivocateAt",
    "SilentFrom",
    "RelayDropWindow",
    "PartitionWindow",
    "CrashRecoverWindow",
    "LeaderFollowingCrash",
    "LossWindow",
    "DuplicateWindow",
    "JitterWindow",
)

#: Loss/duplicate probabilities drawn for impairment windows.  Moderate on
#: purpose: the reliable sublayer's default retry budget covers these, so
#: honest runs stay live and a finding under them is a real differential,
#: not an expected give-up.
IMPAIRMENT_PROBABILITIES: Tuple[float, ...] = (0.25, 0.5)

#: Times are drawn on a fixed grid so generated schedules serialise to
#: short, stable JSON (and window narrowing meets drop-atom candidates on
#: the same grid).
TIME_QUANTUM = 0.25


@dataclass(frozen=True)
class FuzzConfig:
    """The deployment and generation knobs one fuzz campaign runs under."""

    # ------------------------------------------------------------ deployment
    n: int = 5
    k: int = 2
    topology: str = "ring-kcast"
    edges_per_node: int = 1
    medium: str = "ble"
    target_height: int = 3
    #: Space proposals over virtual time so mid-run faults (windows,
    #: adaptive strikes) actually intersect dissemination; with the
    #: paper's zero interval the whole workload floods at t≈0 and most
    #: timed faults would be trivially harmless.
    block_interval: float = 2.0
    #: The seed of the *runs* (workload, jitter) — distinct from the fuzz
    #: seed, which drives schedule generation.
    run_seed: int = 29
    # ------------------------------------------------------------ generation
    max_atoms: int = 3
    #: Fault times are drawn from ``[0, horizon)`` on the TIME_QUANTUM grid.
    horizon: float = 10.0
    #: Trigger rounds for stalling/equivocating leaders are drawn from
    #: ``[1, max_rounds]``.
    max_rounds: int = 4
    #: Adaptive budgets are drawn from ``[1, max_adaptive_budget]``.
    max_adaptive_budget: int = 2
    kinds: Tuple[str, ...] = DEFAULT_KINDS
    #: Protocols the detector evaluates each schedule against.
    protocols: Tuple[str, ...] = PROTOCOLS
    #: Rejection-sampling bound per emitted schedule.
    max_attempts: int = 200

    def __post_init__(self) -> None:
        unknown = [kind for kind in self.kinds if kind not in faults.FAULT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown fault kinds {unknown}; known: {sorted(faults.FAULT_KINDS)}"
            )
        if self.max_atoms < 1:
            raise ValueError(f"max_atoms must be >= 1, got {self.max_atoms}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")

    # -------------------------------------------------------------- specs
    def spec_for(self, schedule: Optional[faults.FaultSchedule], protocol: str) -> DeploymentSpec:
        """The deployment spec that runs ``schedule`` under ``protocol``.

        ``f`` is provisioned to the schedule's worst-case Byzantine count
        (static targets plus adaptive budgets) so quorum sizes match the
        adversary actually deployed — the same rule the scenario matrix
        applies per cell.
        """
        f = 1
        if schedule is not None:
            f = max(f, schedule.max_byzantine())
        return DeploymentSpec(
            protocol=protocol,
            n=self.n,
            f=f,
            k=self.k,
            topology=self.topology,
            edges_per_node=self.edges_per_node,
            medium=self.medium,
            target_height=self.target_height,
            block_interval=self.block_interval,
            seed=self.run_seed,
            fault_schedule=schedule,
        )


class ScheduleGenerator:
    """Draws feasible random fault schedules for a :class:`FuzzConfig`."""

    def __init__(self, config: FuzzConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.rng = SeededRNG(derive_seed(seed, "fuzz-generator"))
        #: Candidates discarded by feasibility/validity since construction
        #: (observability for the rejection tests and the CLI summary).
        self.rejected = 0

    # ------------------------------------------------------------ feasibility
    def feasibility(self, schedule: faults.FaultSchedule) -> Optional[str]:
        """Why ``schedule`` cannot run under this config, or ``None``.

        Checked against the *replicated* protocols (the strictest case:
        the trusted baseline tolerates any minority adversary); delegates
        to the matrix's :func:`schedule_feasibility` gate.
        """
        return schedule_feasibility(self.config.spec_for(schedule, "eesmr"))

    # --------------------------------------------------------------- drawing
    def generate(self) -> faults.FaultSchedule:
        """One feasible schedule (rejection-sampled, deterministic)."""
        for _ in range(self.config.max_attempts):
            count = self.rng.randint(1, self.config.max_atoms)
            try:
                schedule = faults.FaultSchedule(
                    tuple(self._sample_atom() for _ in range(count))
                )
            except ValueError:
                # Two Byzantine behaviours landed on one node; redraw.
                self.rejected += 1
                continue
            if self.feasibility(schedule) is None:
                return schedule
            self.rejected += 1
        raise RuntimeError(
            f"no feasible schedule found in {self.config.max_attempts} attempts; "
            f"loosen the config (n={self.config.n}, topology={self.config.topology}, "
            f"kinds={self.config.kinds})"
        )

    def schedules(self, iterations: int) -> Iterator[faults.FaultSchedule]:
        """A deterministic stream of ``iterations`` feasible schedules."""
        for _ in range(iterations):
            yield self.generate()

    # ---------------------------------------------------------------- atoms
    def _sample_atom(self) -> faults.Fault:
        kind = self.rng.choice(self.config.kinds)
        node = self.rng.randint(0, self.config.n - 1)
        if kind == "CrashAt":
            return faults.CrashAt(node, time=self._grid_time())
        if kind == "StallAt":
            return faults.StallAt(node, round=self._round())
        if kind == "EquivocateAt":
            return faults.EquivocateAt(node, round=self._round())
        if kind == "SilentFrom":
            return faults.SilentFrom(node)
        if kind == "RelayDropWindow":
            start, end = self._window()
            return faults.RelayDropWindow(node, start, end)
        if kind == "PartitionWindow":
            start, heal = self._window()
            return faults.PartitionWindow(node, start, heal)
        if kind == "CrashRecoverWindow":
            start, heal = self._window()
            return faults.CrashRecoverWindow(node, start, heal)
        if kind == "LossWindow":
            start, end = self._short_window()
            return faults.LossWindow(node, start, end, loss=self._impairment_probability())
        if kind == "DuplicateWindow":
            start, end = self._short_window()
            return faults.DuplicateWindow(
                node, start, end, probability=self._impairment_probability()
            )
        if kind == "JitterWindow":
            start, end = self._short_window()
            return faults.JitterWindow(
                node, start, end, jitter=self._grid_time(minimum=TIME_QUANTUM)
            )
        if kind == "LeaderFollowingCrash":
            return faults.LeaderFollowingCrash(
                budget=self.rng.randint(1, self.config.max_adaptive_budget),
                start=self._grid_time(),
                interval=self._grid_time(minimum=TIME_QUANTUM),
            )
        raise AssertionError(f"unhandled kind {kind!r}")  # pragma: no cover

    def _grid_time(self, minimum: float = 0.0) -> float:
        """A time on the TIME_QUANTUM grid in ``[minimum, horizon)``."""
        lo = int(round(minimum / TIME_QUANTUM))
        hi = max(lo, int(self.config.horizon / TIME_QUANTUM) - 1)
        return self.rng.randint(lo, hi) * TIME_QUANTUM

    def _round(self) -> int:
        return self.rng.randint(1, self.config.max_rounds)

    def _window(self) -> Tuple[float, float]:
        """A non-empty ``[start, end)`` window on the grid inside the horizon."""
        start = self._grid_time()
        end = self._grid_time(minimum=start + TIME_QUANTUM)
        return start, max(end, start + TIME_QUANTUM)

    def _impairment_probability(self) -> float:
        return self.rng.choice(IMPAIRMENT_PROBABILITIES)

    def _short_window(self) -> Tuple[float, float]:
        """A window of at most 4 quanta: short enough that default-budget
        retry chains straddle it, so honest runs essentially never give up
        and impairment findings are signal, not retry-budget noise."""
        start = self._grid_time()
        length = self.rng.randint(1, 4) * TIME_QUANTUM
        return start, start + length
