"""Deterministic greedy shrinking of failing fault schedules.

A randomly generated failure usually carries freight: atoms that played no
part in the bug, windows far wider than the triggering overlap, adaptive
budgets bigger than the one strike that mattered.  The :class:`Shrinker`
reduces a failing schedule to a minimal reproducer with three greedy
passes, looping until a whole sweep makes no progress:

1. **drop-atom** — try removing each atom (via
   :meth:`~repro.testkit.faults.FaultSchedule.without_atom`);
2. **narrow-window** — repeatedly halve relay-drop/partition windows from
   the front and the back (:meth:`~repro.testkit.faults.Fault.narrowed`),
   keeping times on the generator's grid;
3. **shrink-victim-set** — step adaptive budgets down toward one victim
   (:meth:`~repro.testkit.faults.LeaderFollowingCrash.with_budget`).

Every candidate is re-verified through the real detector; a reduction is
kept only if the candidate still reproduces the *original* failure — its
failure key must overlap the key being chased, and the chased key narrows
to that overlap, so the shrinker converges on one bug instead of hopping
between distinct failures surgery might uncover.

Determinism: passes run in a fixed order over fixed index ranges, with no
randomness — the same (schedule, detector) input shrinks to the same
reproducer every time (pinned by the property tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.fuzz.detect import Detection
from repro.fuzz.generator import TIME_QUANTUM
from repro.testkit.faults import FaultSchedule, LeaderFollowingCrash


@dataclass
class ShrinkResult:
    """A minimal reproducer and how much work it took to reach it."""

    schedule: FaultSchedule
    detection: Detection
    #: (protocol, invariant) pairs the reproducer still fails.
    failure_key: FrozenSet[Tuple[str, str]]
    #: Accepted reductions.
    steps: int = 0
    #: Candidate detections evaluated (accepted or not).
    evaluations: int = 0

    def describe(self) -> dict:
        return {
            "schedule": self.schedule.describe(),
            "failure_key": sorted(list(pair) for pair in self.failure_key),
            "steps": self.steps,
            "evaluations": self.evaluations,
        }


class Shrinker:
    """Greedy, deterministic schedule reduction against a detector.

    Args:
        detector: Anything with ``detect(schedule) -> Detection``; the
            property tests substitute a stub, the fuzzer passes the real
            :class:`~repro.fuzz.detect.Detector`.
        min_window: Stop narrowing a window once it is this short.
        max_evaluations: Hard bound on candidate detections per shrink.
    """

    def __init__(self, detector, *, min_window: float = TIME_QUANTUM, max_evaluations: int = 200) -> None:
        self.detector = detector
        self.min_window = min_window
        self.max_evaluations = max_evaluations

    # ----------------------------------------------------------------- public
    def shrink(self, schedule: FaultSchedule, detection: Optional[Detection] = None) -> ShrinkResult:
        """Reduce ``schedule`` to a minimal reproducer of its failure."""
        if detection is None:
            detection = self.detector.detect(schedule)
        if not detection.failed:
            raise ValueError("cannot shrink a schedule that does not fail")
        state = ShrinkResult(
            schedule=schedule, detection=detection, failure_key=detection.failure_key()
        )
        progress = True
        while progress and state.evaluations < self.max_evaluations:
            progress = False
            progress |= self._drop_atom_pass(state)
            progress |= self._narrow_window_pass(state)
            progress |= self._shrink_victim_pass(state)
        return state

    # ----------------------------------------------------------------- passes
    def _attempt(self, state: ShrinkResult, candidate: FaultSchedule) -> bool:
        """Re-verify ``candidate``; accept it if the failure survives."""
        if state.evaluations >= self.max_evaluations:
            return False
        state.evaluations += 1
        detection = self.detector.detect(candidate)
        overlap = detection.failure_key() & state.failure_key
        if not overlap:
            return False
        state.schedule = candidate
        state.detection = detection
        state.failure_key = overlap
        state.steps += 1
        return True

    def _drop_atom_pass(self, state: ShrinkResult) -> bool:
        progress = False
        index = 0
        while index < len(state.schedule.faults):
            if self._attempt(state, state.schedule.without_atom(index)):
                progress = True  # the atom at `index` changed; retry in place
            else:
                index += 1
        return progress

    def _narrow_window_pass(self, state: ShrinkResult) -> bool:
        progress = False
        for index in range(len(state.schedule.faults)):
            while self._narrow_once(state, index):
                progress = True
        return progress

    def _narrow_once(self, state: ShrinkResult, index: int) -> bool:
        atom = state.schedule.faults[index]
        window = atom.impairment()
        if window is None or math.isinf(window[1]):
            # Byzantine atoms report an unbounded impairment; only real
            # windowed atoms (their `narrowed` is implemented) shrink here.
            return False
        start, end = window
        duration = end - start
        if duration <= self.min_window + 1e-12:
            return False
        half = max(self.min_window, _snap(duration / 2.0))
        if half >= duration:
            return False
        # Keep the late half first (most faults bite after dissemination
        # begins), then the early half; both stay on the time grid.
        for new_start, new_end in ((end - half, end), (start, start + half)):
            try:
                candidate_atom = atom.narrowed(_snap(new_start), _snap(new_end))
            except (TypeError, ValueError):
                continue
            if self._attempt(state, state.schedule.replace_atom(index, candidate_atom)):
                return True
        return False

    def _shrink_victim_pass(self, state: ShrinkResult) -> bool:
        progress = False
        for index in range(len(state.schedule.faults)):
            while True:
                atom = state.schedule.faults[index]
                if not isinstance(atom, LeaderFollowingCrash) or atom.budget <= 1:
                    break
                candidate = state.schedule.replace_atom(
                    index, atom.with_budget(atom.budget - 1)
                )
                if not self._attempt(state, candidate):
                    break
                progress = True
        return progress


def _snap(value: float) -> float:
    """Snap a time onto the generator's quantized grid."""
    return round(value / TIME_QUANTUM) * TIME_QUANTUM
