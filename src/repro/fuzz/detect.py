"""Run generated schedules across protocols and detect invariant violations.

The :class:`Detector` is the middle of the fuzzing loop: given a
:class:`~repro.testkit.faults.FaultSchedule` it runs one session per
protocol (the same :class:`~repro.session.builder.SessionBuilder` front
door every other surface uses) and evaluates the full invariant battery
against the evidence, folding the verdicts into a :class:`Detection`.

Two detector properties matter for fuzzing:

* **It never dies on a finding.**  A planted (or real) bug can crash the
  run itself — a local :class:`~repro.core.ledger.SafetyViolation` raised
  mid-event, or a livelock tripping the event budget.  Those surface as
  *violations* (mapped onto the agreement / a synthetic ``no-livelock``
  invariant) rather than detector exceptions, so the shrinker can chase
  them like any other failure.
* **Schedules are rebuilt per protocol.**  Each run deserialises the
  schedule from its canonical description
  (``schedule_from_dict(describe())``), so adaptive atoms never share
  victim state across protocol runs and every detection doubles as a
  round-trip exercise of the corpus schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.ledger import SafetyViolation
from repro.eval.runner import DeploymentSpec
from repro.fuzz.generator import FuzzConfig
from repro.session.builder import SessionBuilder
from repro.sim.scheduler import SimulationError
from repro.testkit.faults import FaultSchedule, schedule_from_dict
from repro.testkit.invariants import (
    DEFAULT_INVARIANTS,
    Evidence,
    InvariantReport,
)
from repro.testkit.scenarios import schedule_feasibility
from repro.testkit.trace import TraceRecorder


@dataclass
class ProtocolVerdict:
    """What one protocol run of a schedule concluded."""

    protocol: str
    #: Feasibility skip reason (the run never happened), or ``None``.
    skip_reason: Optional[str] = None
    #: Failing invariant reports only; empty means the run was clean.
    violations: List[InvariantReport] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def describe(self) -> dict:
        """Canonical JSON-friendly verdict (for reports and reproducibility)."""
        return {
            "protocol": self.protocol,
            "skip_reason": self.skip_reason,
            "violations": [
                {"invariant": report.name, "detail": report.detail}
                for report in self.violations
            ],
        }


@dataclass
class Detection:
    """Aggregate verdict of one schedule across every configured protocol."""

    schedule: FaultSchedule
    verdicts: List[ProtocolVerdict] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return any(verdict.failed for verdict in self.verdicts)

    def failure_key(self) -> FrozenSet[Tuple[str, str]]:
        """The set of (protocol, invariant) pairs that failed.

        The shrinker preserves (a subset of) this key across reductions,
        so a shrunk schedule reproduces the *same* bug that was found, not
        some other failure the surgery introduced.
        """
        return frozenset(
            (verdict.protocol, report.name)
            for verdict in self.verdicts
            for report in verdict.violations
        )

    def describe(self) -> dict:
        return {
            "schedule": self.schedule.describe(),
            "verdicts": [verdict.describe() for verdict in self.verdicts],
        }


class Detector:
    """Runs schedules through the session API and checks the invariants.

    Args:
        config: Deployment knobs (n, topology, medium, protocols, ...).
        builder_factory: The session-builder class (or factory callable)
            used for every run.  Tests plant bugs by passing a
            :class:`SessionBuilder` subclass that substitutes mutated
            replica classes or network behaviour — the fuzzer then has
            something real to find.
        invariants: Invariant battery (defaults to the standard five).
        max_events: Per-run event budget; exceeding it is reported as a
            ``no-livelock`` violation instead of raising.
    """

    def __init__(
        self,
        config: FuzzConfig,
        *,
        builder_factory: Optional[Callable[..., SessionBuilder]] = None,
        invariants: Optional[Sequence] = None,
        max_events: int = 2_000_000,
    ) -> None:
        self.config = config
        self.builder_factory = builder_factory or SessionBuilder
        self.invariants = tuple(invariants if invariants is not None else DEFAULT_INVARIANTS)
        self.max_events = max_events
        #: Protocol runs executed since construction (shrink-cost metric).
        self.runs = 0

    # ---------------------------------------------------------------- running
    def detect(self, schedule: Optional[FaultSchedule]) -> Detection:
        """Run ``schedule`` under every configured protocol and judge it."""
        verdicts: List[ProtocolVerdict] = []
        for protocol in self.config.protocols:
            spec = self.config.spec_for(self._fresh_schedule(schedule), protocol)
            reason = schedule_feasibility(spec)
            if reason is not None:
                verdicts.append(ProtocolVerdict(protocol, skip_reason=reason))
                continue
            verdicts.append(self._run_one(spec, protocol))
        return Detection(
            schedule if schedule is not None else FaultSchedule(), verdicts
        )

    def _fresh_schedule(self, schedule: Optional[FaultSchedule]) -> Optional[FaultSchedule]:
        """An independent copy via the canonical description round trip."""
        if schedule is None:
            return None
        return schedule_from_dict(schedule.describe())

    def _run_one(self, spec: DeploymentSpec, protocol: str) -> ProtocolVerdict:
        self.runs += 1
        builder = self.builder_factory(
            spec, max_events=self.max_events, recorder=TraceRecorder()
        )
        label = f"fuzz:{protocol}"
        try:
            result = builder.build().run_to_quiescence().finish()
        except SafetyViolation as violation:
            # A replica refused to commit over its own log mid-run: that IS
            # an agreement failure, observed earlier than the post-run
            # checker would see it.
            return ProtocolVerdict(
                protocol,
                violations=[
                    InvariantReport(
                        "agreement", False, f"[agreement @ {label}] {violation}"
                    )
                ],
            )
        except SimulationError as error:
            return ProtocolVerdict(
                protocol,
                violations=[
                    InvariantReport(
                        "no-livelock", False, f"[no-livelock @ {label}] {error}"
                    )
                ],
            )
        evidence = Evidence(spec=spec, result=result, trace=result.trace, label=label)
        reports = [invariant.run(evidence) for invariant in self.invariants]
        return ProtocolVerdict(
            protocol, violations=[report for report in reports if not report.ok]
        )
