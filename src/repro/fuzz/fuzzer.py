"""The closed fuzzing loop: generate → detect → shrink → (corpus).

:class:`Fuzzer` wires the pieces together: a seeded
:class:`~repro.fuzz.generator.ScheduleGenerator` draws feasible random
schedules, the :class:`~repro.fuzz.detect.Detector` runs each across
every configured protocol under the invariant battery, and any failure is
handed to the :class:`~repro.fuzz.shrink.Shrinker` for reduction to a
minimal reproducer.  The resulting :class:`FuzzReport` is a canonical,
JSON-friendly record of the whole campaign — byte-identical across runs
for a fixed (config, seed) pair — and :meth:`Fuzzer.save_findings`
persists the shrunk reproducers into a :class:`~repro.fuzz.corpus.Corpus`
for CI replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.fuzz.corpus import Corpus
from repro.fuzz.detect import Detection, Detector
from repro.fuzz.generator import FuzzConfig, ScheduleGenerator
from repro.fuzz.shrink import Shrinker, ShrinkResult


@dataclass
class Finding:
    """One invariant violation, from discovery through shrinking."""

    iteration: int
    detection: Detection
    shrunk: ShrinkResult

    def describe(self) -> dict:
        return {
            "iteration": self.iteration,
            "found": self.detection.describe(),
            "shrunk": self.shrunk.describe(),
        }


@dataclass
class FuzzReport:
    """Everything one fuzz campaign did, in canonical form."""

    seed: int
    iterations: int
    detections: List[Detection] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    #: Infeasible candidates the generator rejected before running.
    rejected: int = 0
    #: Protocol runs executed (detection + shrinking).
    runs: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.findings)

    def describe(self) -> dict:
        """Canonical description; equal across same-seed campaigns."""
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "rejected": self.rejected,
            "runs": self.runs,
            "detections": [detection.describe() for detection in self.detections],
            "findings": [finding.describe() for finding in self.findings],
        }


class Fuzzer:
    """The generate → detect → shrink loop, deterministic per seed."""

    def __init__(
        self,
        config: Optional[FuzzConfig] = None,
        seed: int = 0,
        *,
        detector: Optional[Detector] = None,
        generator: Optional[ScheduleGenerator] = None,
        shrinker: Optional[Shrinker] = None,
        **detector_kwargs,
    ) -> None:
        self.config = config or FuzzConfig()
        self.seed = seed
        self.generator = generator or ScheduleGenerator(self.config, seed)
        self.detector = detector or Detector(self.config, **detector_kwargs)
        self.shrinker = shrinker or Shrinker(self.detector)

    def run(self, iterations: int) -> FuzzReport:
        """Fuzz for ``iterations`` schedules; shrink every failure found."""
        report = FuzzReport(seed=self.seed, iterations=iterations)
        for iteration in range(iterations):
            schedule = self.generator.generate()
            detection = self.detector.detect(schedule)
            report.detections.append(detection)
            if detection.failed:
                shrunk = self.shrinker.shrink(schedule, detection)
                report.findings.append(
                    Finding(iteration=iteration, detection=detection, shrunk=shrunk)
                )
        report.rejected = self.generator.rejected
        report.runs = self.detector.runs
        return report

    # ----------------------------------------------------------------- corpus
    def save_findings(self, report: FuzzReport, corpus_dir: Path) -> List[Path]:
        """Persist every finding's shrunk reproducer as a corpus entry.

        One entry per failing (protocol, invariant) finding, keyed to the
        first failing protocol's spec; written with ``expect:
        "violation"`` (they fail *now* — flip to ``"clean"`` once fixed,
        and the entry becomes a permanent regression guard).
        """
        corpus = Corpus(corpus_dir)
        written: List[Path] = []
        for finding in report.findings:
            key = sorted(finding.shrunk.failure_key)
            protocol = key[0][0]
            spec = self.config.spec_for(finding.shrunk.schedule, protocol)
            slug = "-".join(
                sorted({invariant for _, invariant in finding.shrunk.failure_key})
            )
            written.append(
                corpus.add(
                    spec.to_dict(),
                    expect="violation",
                    found={
                        "seed": self.seed,
                        "iteration": finding.iteration,
                        "failures": [list(pair) for pair in key],
                        "shrink_steps": finding.shrunk.steps,
                        "shrink_evaluations": finding.shrunk.evaluations,
                    },
                    note=f"shrunk reproducer from fuzz seed {self.seed}",
                    slug=slug or "reproducer",
                )
            )
        return written
