"""Energy accounting and the paper's analytical energy framework.

``repro.energy`` contains two layers:

* *Measurement* (:mod:`repro.energy.meter`): per-node energy meters that
  charge every send, receive, sign, verify, hash and idle interval during a
  simulated protocol run — the reproduction's stand-in for the paper's
  Saleae/INA169 instrumentation.
* *Analysis* (:mod:`repro.energy.model`, :mod:`repro.energy.protocol_costs`,
  :mod:`repro.energy.analysis`, :mod:`repro.energy.feasibility`): the
  Section 4 framework — closed-form per-consensus cost functions psi(X),
  best/worst/view-change decomposition, the view-change-ratio condition,
  the energy-fault bound f_e (equation EB), and the feasible-region plot of
  Figure 1.
"""

from repro.energy.meter import EnergyCategory, EnergyMeter, EnergyBreakdown
from repro.energy.ledger import ClusterEnergyLedger
from repro.energy.model import CostParameters, CostFunction, LinearCostModel
from repro.energy.protocol_costs import (
    ProtocolCostModel,
    eesmr_cost_model,
    sync_hotstuff_cost_model,
    optsync_cost_model,
    trusted_baseline_cost_model,
)
from repro.energy.analysis import (
    view_change_ratio_bound,
    energy_fault_bound,
    compare_protocols,
    ProtocolComparison,
)
from repro.energy.feasibility import FeasibleRegion, feasible_region

__all__ = [
    "EnergyCategory",
    "EnergyMeter",
    "EnergyBreakdown",
    "ClusterEnergyLedger",
    "CostParameters",
    "CostFunction",
    "LinearCostModel",
    "ProtocolCostModel",
    "eesmr_cost_model",
    "sync_hotstuff_cost_model",
    "optsync_cost_model",
    "trusted_baseline_cost_model",
    "view_change_ratio_bound",
    "energy_fault_bound",
    "compare_protocols",
    "ProtocolComparison",
    "FeasibleRegion",
    "feasible_region",
]
