"""Feasible-region analysis (Fig. 1 of the paper).

Figure 1 plots, over a grid of message sizes ``m`` and system sizes ``n``,
the difference between EESMR's per-consensus energy (nodes talking to each
other over a cheap medium, e.g. WiFi) and the trusted-baseline protocol's
per-consensus energy (every node talking to a control server over an
expensive medium, e.g. 4G).  Wherever the difference is negative, EESMR is
the more energy-efficient choice.

:func:`feasible_region` reproduces that surface with numpy; the resulting
:class:`FeasibleRegion` exposes the raw grid plus the summaries the paper
draws from it (where the sign flips, what fraction of the grid favours
EESMR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.crypto.energy_costs import RSA_1024, SignatureEnergyCost
from repro.energy.model import CostParameters, parameters_from_components
from repro.energy.protocol_costs import (
    ProtocolCostModel,
    eesmr_cost_model,
    trusted_baseline_cost_model,
)
from repro.radio.media import MediumEnergyModel, lte_medium, wifi_medium


@dataclass
class FeasibleRegion:
    """The evaluated (m, n) grid of energy differences."""

    message_sizes: np.ndarray
    node_counts: np.ndarray
    #: difference[i, j] = psi_A(m_i, n_j) - psi_B(m_i, n_j); negative → A wins.
    difference: np.ndarray
    name_a: str
    name_b: str

    @property
    def favourable_mask(self) -> np.ndarray:
        """Boolean mask of grid points where protocol A is more efficient."""
        return self.difference < 0

    @property
    def favourable_fraction(self) -> float:
        """Fraction of grid points where protocol A is more efficient."""
        return float(np.count_nonzero(self.favourable_mask)) / self.difference.size

    def is_favourable(self, message_bytes: int, n: int) -> bool:
        """Whether protocol A wins at (or nearest to) the given point."""
        i = int(np.argmin(np.abs(self.message_sizes - message_bytes)))
        j = int(np.argmin(np.abs(self.node_counts - n)))
        return bool(self.difference[i, j] < 0)

    def crossover_n(self, message_bytes: int) -> Optional[int]:
        """For a fixed payload, the smallest n at which protocol A stops winning."""
        i = int(np.argmin(np.abs(self.message_sizes - message_bytes)))
        row = self.difference[i, :]
        losing = np.nonzero(row >= 0)[0]
        if losing.size == 0:
            return None
        return int(self.node_counts[losing[0]])

    def summary_rows(self) -> list[dict]:
        """One row per payload size: crossover n and min/max difference (for reports)."""
        rows = []
        for i, m in enumerate(self.message_sizes):
            rows.append(
                {
                    "message_bytes": int(m),
                    "crossover_n": self.crossover_n(int(m)),
                    "min_difference_j": float(self.difference[i].min()),
                    "max_difference_j": float(self.difference[i].max()),
                    "favourable_fraction": float(np.mean(self.difference[i] < 0)),
                }
            )
        return rows


def feasible_region(
    message_sizes: Sequence[int] = tuple(range(256, 8192 + 1, 256)),
    node_counts: Sequence[int] = tuple(range(4, 41, 2)),
    model_a: Optional[ProtocolCostModel] = None,
    model_b: Optional[ProtocolCostModel] = None,
    local_medium: Optional[MediumEnergyModel] = None,
    external_medium: Optional[MediumEnergyModel] = None,
    signature: SignatureEnergyCost = RSA_1024,
    k: Optional[int] = None,
    fault_fraction: float = 0.49,
) -> FeasibleRegion:
    """Evaluate psi_A - psi_B over an (m, n) grid.

    Defaults reproduce the paper's Fig. 1 scenario: EESMR (best case) over
    WiFi versus the trusted baseline over 4G, with RSA-1024 signatures.

    When ``k`` is ``None`` the local network is treated as fully connected
    WiFi (every node overhears every transmission, ``k = n - 1``), which is
    the regime where EESMR's quadratic receive cost eventually loses to the
    baseline's linear-but-expensive uplink — the crossover surface Fig. 1
    plots.
    """
    model_a = model_a or eesmr_cost_model()
    model_b = model_b or trusted_baseline_cost_model()
    local_medium = local_medium or wifi_medium()
    external_medium = external_medium or lte_medium()

    sizes = np.asarray(sorted(set(int(m) for m in message_sizes)), dtype=int)
    counts = np.asarray(sorted(set(int(n) for n in node_counts)), dtype=int)
    if sizes.size == 0 or counts.size == 0:
        raise ValueError("grid axes must be non-empty")

    difference = np.zeros((sizes.size, counts.size), dtype=float)
    for j, n in enumerate(counts):
        f = max(0, int(fault_fraction * n))
        if f >= n:
            f = n - 1
        point_k = k if k is not None else max(1, int(n) - 1)
        for i, m in enumerate(sizes):
            params = parameters_from_components(
                n=int(n),
                f=f,
                message_bytes=int(m),
                medium=local_medium,
                signature=signature,
                external_medium=external_medium,
                k=point_k,
                d=point_k,
            )
            difference[i, j] = model_a.best_case(params) - model_b.best_case(params)
    return FeasibleRegion(
        message_sizes=sizes,
        node_counts=counts,
        difference=difference,
        name_a=model_a.name,
        name_b=model_b.name,
    )
