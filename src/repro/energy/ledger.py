"""Cluster-wide energy ledger.

A :class:`ClusterEnergyLedger` owns one :class:`EnergyMeter` per node and
offers the aggregate views that the paper's figures need: total energy of
correct nodes (Fig. 2f), leader vs. replica split (Fig. 2c), per-category
breakdowns, and per-consensus-unit averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.energy.meter import EnergyBreakdown, EnergyCategory, EnergyMeter


@dataclass
class EnergyReport:
    """Summary of a run's energy consumption."""

    per_node_joules: Dict[int, float]
    total_joules: float
    correct_total_joules: float
    leader_joules: float
    mean_replica_joules: float
    breakdown: EnergyBreakdown

    @property
    def total_millijoules(self) -> float:
        return self.total_joules * 1000.0

    @property
    def correct_total_millijoules(self) -> float:
        return self.correct_total_joules * 1000.0


class ClusterEnergyLedger:
    """Holds one meter per node and computes aggregate energy views."""

    def __init__(self, node_ids: Iterable[int], sleep_power_w: float = 0.0003) -> None:
        self.meters: Dict[int, EnergyMeter] = {
            node_id: EnergyMeter(node_id, sleep_power_w=sleep_power_w)
            for node_id in node_ids
        }

    def meter(self, node_id: int) -> EnergyMeter:
        """The meter for one node (created lazily for late joiners)."""
        if node_id not in self.meters:
            self.meters[node_id] = EnergyMeter(node_id)
        return self.meters[node_id]

    def node_ids(self) -> list[int]:
        """All metered node ids."""
        return sorted(self.meters)

    # -------------------------------------------------------------- queries
    def total_joules(self, exclude: Optional[Iterable[int]] = None) -> float:
        """Total Joules across nodes, optionally excluding some (e.g. Byzantine)."""
        skip = set(exclude or ())
        return sum(m.total_joules for nid, m in self.meters.items() if nid not in skip)

    def per_node_joules(self) -> Dict[int, float]:
        """Total Joules keyed by node id."""
        return {nid: m.total_joules for nid, m in self.meters.items()}

    def combined_breakdown(self, exclude: Optional[Iterable[int]] = None) -> EnergyBreakdown:
        """Category breakdown summed over the (non-excluded) nodes."""
        skip = set(exclude or ())
        combined = EnergyBreakdown()
        for nid, meter in self.meters.items():
            if nid in skip:
                continue
            for category, amount in meter.breakdown.joules.items():
                combined.add(category, amount)
        return combined

    def category_joules(
        self, category: EnergyCategory, exclude: Optional[Iterable[int]] = None
    ) -> float:
        """Total Joules for one category across nodes."""
        skip = set(exclude or ())
        return sum(
            m.breakdown.get(category)
            for nid, m in self.meters.items()
            if nid not in skip
        )

    def report(
        self,
        leader: int,
        faulty: Optional[Iterable[int]] = None,
    ) -> EnergyReport:
        """Produce the standard per-run energy report.

        Args:
            leader: Node id of the (steady-state) leader; its energy is
                reported separately, as in Fig. 2c and Fig. 3.
            faulty: Node ids of Byzantine nodes; excluded from the
                "correct nodes" totals, as in Fig. 2f.
        """
        faulty_set = set(faulty or ())
        per_node = self.per_node_joules()
        correct_nodes = [nid for nid in per_node if nid not in faulty_set]
        replicas = [nid for nid in correct_nodes if nid != leader]
        mean_replica = (
            sum(per_node[nid] for nid in replicas) / len(replicas) if replicas else 0.0
        )
        return EnergyReport(
            per_node_joules=per_node,
            total_joules=sum(per_node.values()),
            correct_total_joules=sum(per_node[nid] for nid in correct_nodes),
            leader_joules=per_node.get(leader, 0.0),
            mean_replica_joules=mean_replica,
            breakdown=self.combined_breakdown(exclude=faulty_set),
        )

    def reset(self) -> None:
        """Zero every meter."""
        for meter in self.meters.values():
            meter.reset()
