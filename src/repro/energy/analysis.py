"""Section 4 decision rules: when is protocol A more energy-efficient than B?

The paper derives two inequalities:

* the *view-change-ratio* condition: with ``nu_f = V / N`` the fraction of
  consensus units that suffer a view change,

      nu_f <= (psi*_B - psi_B) / (psi_V - psi*_V)

  protocol psi beats protocol psi* whenever the observed view-change ratio
  stays below that bound (best-case-optimal regime);

* the *energy-fault bound* (equation EB): the number of worst cases f_e an
  adversary can force while EESMR still beats a (view-change-free)
  baseline,

      f_e <= (psi_Baseline - psi^EESMR_B) / (psi^EESMR_B + psi^EESMR_V).

This module evaluates both, plus a convenience comparison report used by
examples and the Table 3 / Fig. 1 benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.energy.model import CostParameters
from repro.energy.protocol_costs import ProtocolCostModel


@dataclass(frozen=True)
class ProtocolComparison:
    """Energy comparison of two protocols at one parameter point."""

    params: CostParameters
    name_a: str
    name_b: str
    best_a: float
    best_b: float
    view_change_a: float
    view_change_b: float
    max_view_change_ratio: float

    @property
    def best_case_winner(self) -> str:
        """Which protocol is cheaper when the leader is correct."""
        return self.name_a if self.best_a <= self.best_b else self.name_b

    @property
    def best_case_advantage(self) -> float:
        """How many times cheaper the best-case winner is."""
        lo, hi = sorted((self.best_a, self.best_b))
        return hi / lo if lo > 0 else math.inf

    def a_wins_at_ratio(self, view_change_ratio: float) -> bool:
        """Whether protocol A wins for an observed view-change ratio nu_f."""
        if view_change_ratio < 0 or view_change_ratio > 1:
            raise ValueError("view-change ratio must be in [0, 1]")
        expected_a = (1 - view_change_ratio) * self.best_a + view_change_ratio * (
            self.best_a + self.view_change_a
        )
        expected_b = (1 - view_change_ratio) * self.best_b + view_change_ratio * (
            self.best_b + self.view_change_b
        )
        return expected_a <= expected_b


def view_change_ratio_bound(
    best_a: float, best_b: float, view_change_a: float, view_change_b: float
) -> float:
    """The view-change-ratio threshold ``(psi*_B - psi_B) / (psi_V - psi*_V)``.

    With A as psi and B as psi*, the returned value is the nu_f at which the
    expected per-unit energies of the two protocols cross.  Its meaning
    depends on which trade-off region the pair sits in (Section 4's
    "(un)favorable conditions"):

    * A better in both phases → 1.0 (A wins at every ratio);
    * A worse in both phases → 0.0 (A never wins);
    * A best-case optimal (cheaper steady state, pricier view change) → A
      wins for every ``nu_f`` *below* the returned threshold — this is the
      EESMR-vs-certificate-protocol situation;
    * A worst-case optimal (pricier steady state, cheaper view change) → A
      wins for every ``nu_f`` *above* the returned threshold.
    """
    best_gain = best_b - best_a
    vc_penalty = view_change_a - view_change_b
    if best_gain >= 0 and vc_penalty <= 0:
        return 1.0
    if best_gain <= 0 and vc_penalty >= 0:
        return 0.0
    # Both differences share a sign here, so the ratio is positive in either
    # the best-case-optimal or the worst-case-optimal region.
    return max(0.0, min(1.0, best_gain / vc_penalty))


def energy_fault_bound(
    baseline_per_unit: float, eesmr_best: float, eesmr_view_change: float
) -> float:
    """Equation (EB): the number of adversarially forced worst cases EESMR absorbs.

    ``f_e <= (psi_Baseline - psi^EESMR_B) / (psi^EESMR_B + psi^EESMR_V)``

    A negative numerator (the baseline is already cheaper than EESMR's best
    case) yields 0: no energy-fault tolerance relative to that baseline.
    """
    denominator = eesmr_best + eesmr_view_change
    if denominator <= 0:
        raise ValueError("EESMR costs must be positive")
    return max(0.0, (baseline_per_unit - eesmr_best) / denominator)


def breakeven_blocks(
    best_a: float, best_b: float, view_change_a: float, view_change_b: float, view_changes: int
) -> float:
    """N >= V * (psi_V - psi*_V) / (psi*_B - psi_B): consensus units needed to amortise.

    For a best-case-optimal protocol A with a more expensive view change,
    this is the number of consensus units N over which running A is still
    cheaper than B given ``view_changes`` worst-case events.
    """
    if view_changes < 0:
        raise ValueError("view_changes cannot be negative")
    best_gain = best_b - best_a
    vc_penalty = view_change_a - view_change_b
    if best_gain <= 0:
        return math.inf if vc_penalty > 0 else 0.0
    if vc_penalty <= 0:
        return 0.0
    return view_changes * vc_penalty / best_gain


def compare_protocols(
    model_a: ProtocolCostModel,
    model_b: ProtocolCostModel,
    params: CostParameters,
) -> ProtocolComparison:
    """Evaluate both models at one parameter point and derive the decision bound."""
    best_a = model_a.best_case(params)
    best_b = model_b.best_case(params)
    vc_a = model_a.view_change(params)
    vc_b = model_b.view_change(params)
    return ProtocolComparison(
        params=params,
        name_a=model_a.name,
        name_b=model_b.name,
        best_a=best_a,
        best_b=best_b,
        view_change_a=vc_a,
        view_change_b=vc_b,
        max_view_change_ratio=view_change_ratio_bound(best_a, best_b, vc_a, vc_b),
    )


def expected_energy(
    model: ProtocolCostModel, params: CostParameters, consensus_units: int, view_changes: int
) -> float:
    """Total expected energy of N consensus units with V view changes.

    ``(N - V) * psi_B + V * psi_W`` — the quantity both sides of the
    paper's comparison inequality compute.
    """
    if consensus_units < 0 or view_changes < 0:
        raise ValueError("counts cannot be negative")
    if view_changes > consensus_units:
        raise ValueError("cannot have more view changes than consensus units")
    best = model.best_case(params)
    worst = model.worst_case(params)
    return (consensus_units - view_changes) * best + view_changes * worst
