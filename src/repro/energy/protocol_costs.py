"""Closed-form per-consensus cost models for each protocol.

These are the analytic psi functions the paper builds "in MATLAB" to count
operations per consensus unit and price them with measured primitive
costs.  They are deliberately simple operation counts — the simulation in
:mod:`repro.eval` measures the same quantities empirically — and are the
inputs to the feasible-region analysis of Fig. 1 and to the bounds of
Section 4.

Conventions:

* costs are summed over all *correct CPS nodes* for one consensus unit
  (the trusted control node's own energy is excluded, as in the paper);
* ``params.k`` is the multicast degree, ``params.d`` the number of
  neighbours a node forwards to during flooding;
* view-change costs are per view-change event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.energy.model import CostFunction, CostParameters


@dataclass(frozen=True)
class ProtocolCostModel:
    """Best-case, view-change and worst-case cost functions for one protocol."""

    name: str
    best_case: CostFunction
    view_change: CostFunction

    def worst_case(self, params: CostParameters) -> float:
        """psi_W = psi_B + psi_V (the paper assumes psi_V = psi_W - psi_B)."""
        return self.best_case(params) + self.view_change(params)

    def evaluate(self, params: CostParameters) -> Dict[str, float]:
        """All three costs for one parameter point."""
        best = self.best_case(params)
        view = self.view_change(params)
        return {"best_case": best, "view_change": view, "worst_case": best + view}


def _proposal_bytes(params: CostParameters) -> float:
    """Wire size of a steady-state proposal: payload + parent hash + one signature."""
    return params.message_bytes + 32 + params.signature_bytes


def _vote_bytes(params: CostParameters) -> float:
    """Wire size of an explicit vote: a hash plus one signature."""
    return 32 + params.signature_bytes


def _certificate_bytes(params: CostParameters) -> float:
    """Wire size of an f+1 certificate."""
    return 32 + (params.f + 1) * params.signature_bytes


# --------------------------------------------------------------------- EESMR
def _eesmr_best(params: CostParameters) -> float:
    """EESMR steady state: one proposal flood, one signature, n-1 verifications.

    Every node transmits the proposal once to its k-cast (flooding) and
    receives it on each of its k incoming edges; the leader signs once and
    every other node verifies once.
    """
    size = _proposal_bytes(params)
    transmit = params.n * params.send_cost(size)
    receive = params.n * params.k * params.recv_cost(size)
    crypto = params.sign_j + (params.n - 1) * params.verify_j
    return transmit + receive + crypto


def _eesmr_view_change(params: CostParameters) -> float:
    """EESMR view change: blames, commit-update/certify exchange, two extra rounds.

    Phases (per correct node unless noted):
      * blame flood: n floods of a blame message;
      * commit-update flood + f+1 certify votes back to each node;
      * commit-QC flood (certificate of f+1 signatures);
      * round 1 (NewViewProposal with f+1 certificates) and round 2
        (vote certificate) floods plus one explicit vote per node.
    Signing: each node signs a blame, a certify vote and a round-1 vote.
    Verification: each node verifies O(n + f^2) signatures (blames, votes,
    certificates in the status).
    """
    n, f, k = params.n, params.f, params.k
    blame_size = 64 + params.signature_bytes
    commit_update_size = params.message_bytes + 32 + params.signature_bytes
    certify_size = _vote_bytes(params)
    qc_size = _certificate_bytes(params)
    nv_size = params.message_bytes + (f + 1) * _certificate_bytes(params)

    def flood(size: float) -> float:
        return n * params.send_cost(size) + n * k * params.recv_cost(size)

    communication = (
        n * flood(blame_size)                 # every node blames
        + flood(qc_size)                       # blame certificate
        + n * flood(commit_update_size)        # every node broadcasts B_com
        + n * (f + 1) * (params.send_cost(certify_size) + params.recv_cost(certify_size))
        + n * flood(qc_size)                   # commit certificates broadcast
        + n * (params.send_cost(qc_size) + params.recv_cost(qc_size))  # QCs to new leader
        + flood(nv_size)                       # round 1 proposal
        + n * flood(certify_size)              # round 1 votes
        + flood(qc_size)                       # round 2 vote certificate
    )
    signing = n * 3 * params.sign_j
    verification = (
        n * (f + 1) * params.verify_j          # blame certificate checks
        + n * (f + 1) * params.verify_j        # certify votes / commit QCs
        + n * (f + 1) * (f + 1) * params.verify_j  # status certificates in round 1
        + n * (f + 1) * params.verify_j        # round 2 vote certificate
    )
    return communication + signing + verification


# ------------------------------------------------------------- Sync HotStuff
def _sync_hotstuff_best(params: CostParameters) -> float:
    """Sync HotStuff steady state: proposal + n vote floods + certificate checks."""
    n, k = params.n, params.k
    proposal_size = _proposal_bytes(params) + _certificate_bytes(params)
    vote_size = _vote_bytes(params)

    def flood(size: float) -> float:
        return n * params.send_cost(size) + n * k * params.recv_cost(size)

    communication = flood(proposal_size) + n * flood(vote_size)
    quorum = n // 2 + 1
    signing = n * params.sign_j                      # one vote per node
    verification = n * (1 + 2 * quorum) * params.verify_j  # proposal + cert + votes
    return communication + signing + verification


def _sync_hotstuff_view_change(params: CostParameters) -> float:
    """Sync HotStuff view change: blames, status (highest certificate), new proposal."""
    n, f, k = params.n, params.f, params.k
    blame_size = 64 + params.signature_bytes
    status_size = params.message_bytes + _certificate_bytes(params)

    def flood(size: float) -> float:
        return n * params.send_cost(size) + n * k * params.recv_cost(size)

    communication = n * flood(blame_size) + flood(_certificate_bytes(params)) + n * flood(status_size)
    signing = n * 2 * params.sign_j
    verification = n * (f + 1) * params.verify_j + n * (f + 1) * params.verify_j
    return communication + signing + verification


# ------------------------------------------------------------------ OptSync
def _optsync_best(params: CostParameters) -> float:
    """OptSync steady state: like Sync HotStuff with a 3n/4+1 responsive quorum."""
    base = _sync_hotstuff_best(params)
    quorum_shs = params.n // 2 + 1
    quorum_opt = (3 * params.n) // 4 + 1
    extra_verifies = params.n * 2 * (quorum_opt - quorum_shs) * params.verify_j
    return base + extra_verifies


# ---------------------------------------------------------- Trusted baseline
def _trusted_baseline(params: CostParameters) -> float:
    """Trusted baseline: every node uploads m bytes and downloads the ordered block.

    The trusted node's energy is excluded (it is mains powered); each CPS
    node pays one external-medium send, one external-medium receive, and a
    single signature verification of the control node's block.
    """
    upload = params.ext_send_cost(params.message_bytes + params.signature_bytes)
    download = params.ext_recv_cost(params.message_bytes + 32 + params.signature_bytes)
    return params.n * (upload + download + params.verify_j)


def _zero(_: CostParameters) -> float:
    return 0.0


def eesmr_cost_model() -> ProtocolCostModel:
    """Analytic cost model for EESMR."""
    return ProtocolCostModel(
        name="eesmr",
        best_case=CostFunction("eesmr-best", _eesmr_best),
        view_change=CostFunction("eesmr-view-change", _eesmr_view_change),
    )


def sync_hotstuff_cost_model() -> ProtocolCostModel:
    """Analytic cost model for Sync HotStuff."""
    return ProtocolCostModel(
        name="sync-hotstuff",
        best_case=CostFunction("shs-best", _sync_hotstuff_best),
        view_change=CostFunction("shs-view-change", _sync_hotstuff_view_change),
    )


def optsync_cost_model() -> ProtocolCostModel:
    """Analytic cost model for OptSync."""
    return ProtocolCostModel(
        name="optsync",
        best_case=CostFunction("optsync-best", _optsync_best),
        view_change=CostFunction("optsync-view-change", _sync_hotstuff_view_change),
    )


def trusted_baseline_cost_model() -> ProtocolCostModel:
    """Analytic cost model for the trusted-control-node baseline.

    The baseline has no view change (the trusted node cannot be Byzantine
    under its trust assumption), so psi_V = 0.
    """
    return ProtocolCostModel(
        name="trusted-baseline",
        best_case=CostFunction("baseline-best", _trusted_baseline),
        view_change=CostFunction("baseline-view-change", _zero),
    )


#: Registry of all analytic models, keyed by protocol name.
COST_MODELS: Dict[str, Callable[[], ProtocolCostModel]] = {
    "eesmr": eesmr_cost_model,
    "sync-hotstuff": sync_hotstuff_cost_model,
    "optsync": optsync_cost_model,
    "trusted-baseline": trusted_baseline_cost_model,
}


def cost_model(name: str) -> ProtocolCostModel:
    """Look up an analytic cost model by protocol name."""
    if name not in COST_MODELS:
        raise KeyError(f"unknown protocol {name!r}; known: {sorted(COST_MODELS)}")
    return COST_MODELS[name]()
