"""The paper's per-consensus energy cost framework (Section 4).

A protocol's energy per consensus unit is modelled as a function psi(X) of
the system parameter vector

    X = (n, f, m, S, R, sigma_s, sigma_v)

where ``n`` is the number of nodes, ``f`` the fault bound, ``m`` the
payload size, ``S``/``R`` the per-byte send/receive costs of the medium,
and ``sigma_s``/``sigma_v`` the signing/verification energies.  The paper's
example is a linear combination of monomials such as ``c4 * m * n * S``;
:class:`LinearCostModel` expresses exactly that family and
:class:`CostFunction` lets callers plug in arbitrary callables when a
protocol needs a shape the linear family cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable

from repro.crypto.energy_costs import SignatureEnergyCost, signature_cost
from repro.radio.media import MediumEnergyModel


@dataclass(frozen=True)
class CostParameters:
    """The parameter vector X of Section 4 (all energies in Joules)."""

    n: int
    f: int
    message_bytes: int
    send_per_byte_j: float
    recv_per_byte_j: float
    sign_j: float
    verify_j: float
    #: Per-message fixed radio overhead (connection setup, preamble, ...).
    send_base_j: float = 0.0
    recv_base_j: float = 0.0
    #: Costs of the *external* medium used to reach a trusted control node
    #: (the baseline protocol); default to the local medium when unset.
    ext_send_per_byte_j: float | None = None
    ext_recv_per_byte_j: float | None = None
    ext_send_base_j: float = 0.0
    ext_recv_base_j: float = 0.0
    #: Size of a signature / certificate entry on the wire (bytes).
    signature_bytes: int = 128
    #: k-cast degree (receivers reached by one transmission).
    k: int = 1
    #: Number of neighbours a node forwards to in a partially connected graph.
    d: int = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        if not 0 <= self.f < self.n:
            raise ValueError("f must satisfy 0 <= f < n")
        if self.message_bytes < 0:
            raise ValueError("message size cannot be negative")

    # ------------------------------------------------------------- helpers
    def send_cost(self, size_bytes: float) -> float:
        """Energy to transmit ``size_bytes`` once on the local medium."""
        return self.send_base_j + self.send_per_byte_j * size_bytes

    def recv_cost(self, size_bytes: float) -> float:
        """Energy to receive ``size_bytes`` once on the local medium."""
        return self.recv_base_j + self.recv_per_byte_j * size_bytes

    def ext_send_cost(self, size_bytes: float) -> float:
        """Energy to transmit ``size_bytes`` once on the external medium."""
        per_byte = self.ext_send_per_byte_j if self.ext_send_per_byte_j is not None else self.send_per_byte_j
        return self.ext_send_base_j + per_byte * size_bytes

    def ext_recv_cost(self, size_bytes: float) -> float:
        """Energy to receive ``size_bytes`` once on the external medium."""
        per_byte = self.ext_recv_per_byte_j if self.ext_recv_per_byte_j is not None else self.recv_per_byte_j
        return self.ext_recv_base_j + per_byte * size_bytes

    def with_message_bytes(self, message_bytes: int) -> "CostParameters":
        """A copy with a different payload size (used in parameter sweeps)."""
        return replace(self, message_bytes=message_bytes)

    def with_n(self, n: int, f: int | None = None) -> "CostParameters":
        """A copy with a different system size."""
        return replace(self, n=n, f=f if f is not None else min(self.f, n - 1))


def parameters_from_components(
    n: int,
    f: int,
    message_bytes: int,
    medium: MediumEnergyModel,
    signature: SignatureEnergyCost | str,
    external_medium: MediumEnergyModel | None = None,
    k: int = 1,
    d: int = 1,
    reference_bytes: int = 1024,
) -> CostParameters:
    """Build :class:`CostParameters` from a medium model and a signature scheme.

    Per-byte medium costs are extracted from the medium model by a secant
    over ``[0, reference_bytes]``, which matches how the paper linearises
    its measured Table 1 rows.
    """
    sig = signature if isinstance(signature, SignatureEnergyCost) else signature_cost(signature)
    send_base = medium.send_energy_j(0)
    recv_base = medium.recv_energy_j(0)
    send_slope = (medium.send_energy_j(reference_bytes) - send_base) / reference_bytes
    recv_slope = (medium.recv_energy_j(reference_bytes) - recv_base) / reference_bytes
    ext_send_slope = None
    ext_recv_slope = None
    ext_send_base = 0.0
    ext_recv_base = 0.0
    if external_medium is not None:
        ext_send_base = external_medium.send_energy_j(0)
        ext_recv_base = external_medium.recv_energy_j(0)
        ext_send_slope = (
            external_medium.send_energy_j(reference_bytes) - ext_send_base
        ) / reference_bytes
        ext_recv_slope = (
            external_medium.recv_energy_j(reference_bytes) - ext_recv_base
        ) / reference_bytes
    return CostParameters(
        n=n,
        f=f,
        message_bytes=message_bytes,
        send_per_byte_j=send_slope,
        recv_per_byte_j=recv_slope,
        send_base_j=send_base,
        recv_base_j=recv_base,
        sign_j=sig.sign_joules,
        verify_j=sig.verify_joules,
        ext_send_per_byte_j=ext_send_slope,
        ext_recv_per_byte_j=ext_recv_slope,
        ext_send_base_j=ext_send_base,
        ext_recv_base_j=ext_recv_base,
        signature_bytes=sig.signature_size_bytes,
        k=k,
        d=d,
    )


class CostFunction:
    """A named psi(X) function."""

    def __init__(self, name: str, fn: Callable[[CostParameters], float]) -> None:
        self.name = name
        self._fn = fn

    def __call__(self, params: CostParameters) -> float:
        value = self._fn(params)
        if value < 0 and abs(value) < 1e-12:
            return 0.0
        return value

    def sweep(self, params: CostParameters, sizes: Iterable[int]) -> Dict[int, float]:
        """Evaluate the function over a range of payload sizes."""
        return {size: self(params.with_message_bytes(size)) for size in sizes}


@dataclass
class LinearCostModel:
    """The paper's example linear cost family.

    ``psi(X) = c1*m + c2*n + c3*m*n + c4*m*n*S + c5*m*n*R + c6*sigma_s + c7*n*sigma_v``
    """

    c1: float = 0.0
    c2: float = 0.0
    c3: float = 0.0
    c4: float = 0.0
    c5: float = 0.0
    c6: float = 0.0
    c7: float = 0.0
    name: str = "linear"

    def __call__(self, params: CostParameters) -> float:
        m = params.message_bytes
        n = params.n
        return (
            self.c1 * m
            + self.c2 * n
            + self.c3 * m * n
            + self.c4 * m * n * params.send_per_byte_j
            + self.c5 * m * n * params.recv_per_byte_j
            + self.c6 * params.sign_j
            + self.c7 * n * params.verify_j
        )

    def as_cost_function(self) -> CostFunction:
        """Wrap this model as a :class:`CostFunction`."""
        return CostFunction(self.name, self.__call__)
