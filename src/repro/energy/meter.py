"""Per-node energy metering.

The paper attributes energy to the protocol by measuring the board's draw
and subtracting the sleep-state baseline.  The reproduction does the
converse: it starts from zero and charges every protocol-visible operation
(radio transmit/receive, signature sign/verify, hashing) plus an optional
idle/sleep power draw over elapsed virtual time.  The result is the same
quantity the paper plots — "energy consumed by the protocol" — broken down
by category so experiments can explain *where* the Joules go.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, Optional, Union

#: A charge annotation: the string itself, or a zero-argument thunk that
#: builds it lazily.  Hot paths pass thunks (or skip the detail entirely)
#: so untraced meters never pay for string formatting.
Detail = Union[str, Callable[[], str]]


class EnergyCategory(str, Enum):
    """Where a unit of energy was spent."""

    TRANSMIT = "transmit"
    RECEIVE = "receive"
    SIGN = "sign"
    VERIFY = "verify"
    HASH = "hash"
    SLEEP = "sleep"
    COMPUTE = "compute"


@dataclass
class EnergyBreakdown:
    """Aggregated Joules per category with convenience accessors."""

    joules: Dict[EnergyCategory, float] = field(default_factory=dict)

    def add(self, category: EnergyCategory, amount_j: float) -> None:
        """Accumulate ``amount_j`` Joules into ``category``."""
        self.joules[category] = self.joules.get(category, 0.0) + amount_j

    def get(self, category: EnergyCategory) -> float:
        """Joules charged to ``category`` so far."""
        return self.joules.get(category, 0.0)

    @property
    def total(self) -> float:
        """Total Joules across all categories."""
        return sum(self.joules.values())

    @property
    def communication(self) -> float:
        """Joules spent on the radio (transmit + receive)."""
        return self.get(EnergyCategory.TRANSMIT) + self.get(EnergyCategory.RECEIVE)

    @property
    def cryptography(self) -> float:
        """Joules spent on cryptographic operations."""
        return (
            self.get(EnergyCategory.SIGN)
            + self.get(EnergyCategory.VERIFY)
            + self.get(EnergyCategory.HASH)
        )

    def merged_with(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Return a new breakdown containing the sum of both."""
        merged = EnergyBreakdown(dict(self.joules))
        for category, amount in other.joules.items():
            merged.add(category, amount)
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view keyed by category value (for reports/tables)."""
        return {category.value: amount for category, amount in sorted(self.joules.items(), key=lambda kv: kv[0].value)}


@dataclass
class EnergyEvent:
    """A single charge recorded by a meter (kept only when tracing)."""

    time: float
    category: EnergyCategory
    joules: float
    detail: str


class EnergyMeter:
    """Energy meter attached to one simulated node.

    Args:
        node_id: Owner of the meter.
        sleep_power_w: Baseline draw while idle; the paper measured 0.3 mW
            in sleep and ~1 mW while running SMR.  Sleep energy is charged
            explicitly via :meth:`charge_sleep` by the experiment runner so
            per-protocol numbers can include or exclude it, mirroring the
            paper's subtraction of the sleep baseline.
        trace: Keep a list of every individual charge (memory heavy; used
            by unit tests and debugging only).
    """

    def __init__(
        self,
        node_id: int,
        sleep_power_w: float = 0.0003,
        trace: bool = False,
    ) -> None:
        self.node_id = node_id
        self.sleep_power_w = sleep_power_w
        self.breakdown = EnergyBreakdown()
        self.trace_enabled = trace
        self.events: list[EnergyEvent] = []
        self._marks: Dict[str, float] = {}

    # -------------------------------------------------------------- charging
    def charge(
        self,
        category: EnergyCategory,
        joules: float,
        time: float = 0.0,
        detail: Detail = "",
    ) -> None:
        """Charge ``joules`` to ``category``.

        Negative charges are rejected: refunds would let a buggy protocol
        hide energy, and nothing in the paper's model ever returns energy.

        ``detail`` may be a lazy thunk; it is only evaluated when this
        meter keeps a trace, so hot paths can annotate charges without
        allocating strings on untraced runs.
        """
        if joules < 0:
            raise ValueError(f"cannot charge negative energy: {joules}")
        self.breakdown.add(category, joules)
        if self.trace_enabled:
            if callable(detail):
                detail = detail()
            self.events.append(EnergyEvent(time, category, joules, detail))

    def charge_transmit(self, joules: float, time: float = 0.0, detail: Detail = "") -> None:
        """Charge radio transmission energy."""
        self.charge(EnergyCategory.TRANSMIT, joules, time, detail)

    def charge_receive(self, joules: float, time: float = 0.0, detail: Detail = "") -> None:
        """Charge radio reception energy."""
        self.charge(EnergyCategory.RECEIVE, joules, time, detail)

    def charge_sign(self, joules: float, time: float = 0.0, detail: Detail = "") -> None:
        """Charge a signing operation."""
        self.charge(EnergyCategory.SIGN, joules, time, detail)

    def charge_verify(self, joules: float, time: float = 0.0, detail: Detail = "") -> None:
        """Charge a verification operation."""
        self.charge(EnergyCategory.VERIFY, joules, time, detail)

    def charge_hash(self, joules: float, time: float = 0.0, detail: Detail = "") -> None:
        """Charge a hash computation."""
        self.charge(EnergyCategory.HASH, joules, time, detail)

    def charge_sleep(self, duration_s: float, time: float = 0.0) -> None:
        """Charge the idle baseline for ``duration_s`` seconds of virtual time."""
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        self.charge(EnergyCategory.SLEEP, self.sleep_power_w * duration_s, time, "sleep")

    # ----------------------------------------------------------------- marks
    def mark(self, label: str) -> None:
        """Remember the current total so a later interval can be measured."""
        self._marks[label] = self.breakdown.total

    def since_mark(self, label: str) -> float:
        """Joules spent since :meth:`mark` was called with ``label``."""
        if label not in self._marks:
            raise KeyError(f"no mark named {label!r}")
        return self.breakdown.total - self._marks[label]

    # --------------------------------------------------------------- queries
    @property
    def total_joules(self) -> float:
        """Total energy charged to this node."""
        return self.breakdown.total

    @property
    def total_millijoules(self) -> float:
        """Total energy in mJ (the unit most figures in the paper use)."""
        return self.breakdown.total * 1000.0

    def snapshot(self) -> EnergyBreakdown:
        """An independent copy of the current breakdown."""
        return EnergyBreakdown(dict(self.breakdown.joules))

    def reset(self) -> None:
        """Zero the meter (used between benchmark repetitions)."""
        self.breakdown = EnergyBreakdown()
        self.events.clear()
        self._marks.clear()


def total_energy(meters: Iterable[EnergyMeter], exclude: Optional[set[int]] = None) -> float:
    """Sum of total Joules over a collection of meters.

    Args:
        exclude: Node ids to skip — the paper's figures report the energy of
            *correct* nodes only, so experiment code passes the Byzantine
            node ids here.
    """
    skip = exclude or set()
    return sum(m.total_joules for m in meters if m.node_id not in skip)
