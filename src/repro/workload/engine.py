"""Workload engines: deterministic traffic generation for deployments.

Every engine obeys the same determinism contract as the rest of the
reproduction: the arrival stream is a pure function of the
:class:`~repro.eval.runner.DeploymentSpec` (rate/clients/seed), drawn from
a :func:`~repro.sim.rng.derive_seed`-derived stream so that adding an
engine never perturbs any existing consumer of randomness.  Two builds of
the same spec produce the identical stream — including across matrix
worker processes, which is what makes ``parallel=N`` sweeps byte-identical
to serial ones.

Open-loop command ids live in their own namespace (``ol<client>-<index>``,
trace entries default to ``tr<index>``), so they can never collide with
the closed-loop generator's ``c0-<index>`` stream.  Open-loop commands
carry ``client_id=0`` — the session's single tracking
:class:`~repro.core.client.Client` — and encode the *simulated* client in
the id namespace instead: the paper's clients are out-of-band, so
multiplexing thousands of simulated senders over one f+1-ack tracker
models production load without n_clients live objects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.types import Command
from repro.eval.workloads import commands_for_run, fill_txpools
from repro.sim.rng import SeededRNG, derive_seed

#: Safety valve: the largest arrival stream any engine will generate.
MAX_GENERATED_COMMANDS = 250_000


@dataclass
class WorkloadPlan:
    """What an engine contributed to a session build.

    ``commands`` is the full deterministic stream (the session exposes it
    as ``session.commands``); ``arrivals`` is the subset injected as
    simulator events (empty for preloads).
    """

    commands: List[Command]
    arrivals: Tuple[Command, ...] = ()


class WorkloadEngine:
    """Protocol for workload engines (duck-typed; subclassing is idiomatic).

    * :meth:`commands_for` — the arrival stream as a pure function of the
      spec (no simulator needed; invariants and property tests call this);
    * :meth:`install` — wire the stream into a partially built session
      (stage 5 of the builder pipeline); preloads fill pools directly,
      arrival-driven engines push ``workload:arrival`` simulator events;
    * :meth:`describe` — the JSON-safe ``workload`` schema section
      (round-trips through :func:`workload_from_dict`);
    * :meth:`is_default` — whether this engine is byte-identical to the
      seed behaviour (fingerprints omit default engines entirely).
    """

    kind = "engine"

    def commands_for(self, spec) -> List[Command]:
        raise NotImplementedError

    def command_ids(self, spec) -> Set[str]:
        """The id set of :meth:`commands_for` (liveness invariant support)."""
        return {command.command_id for command in self.commands_for(spec)}

    def install(self, builder) -> WorkloadPlan:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        raise NotImplementedError

    def is_default(self) -> bool:
        return False


@dataclass
class ClosedLoopPreload(WorkloadEngine):
    """The seed workload path: pre-load one stream into every pool.

    Byte-identical to the pre-engine ``build_workload_stage`` — the same
    generator call, the same client registration, the same fill order, no
    simulator events — so every golden trace fingerprint is unchanged
    whether a spec carries ``workload=None`` or an explicit default
    ``ClosedLoopPreload()``.
    """

    #: Extra blocks' worth of commands beyond the target height (covers
    #: view-change and abandoned-proposal consumption).
    surplus_blocks: int = 4

    kind = "closed-loop"

    def commands_for(self, spec) -> List[Command]:
        return commands_for_run(
            spec.target_height,
            spec.batch_size,
            spec.command_payload_bytes,
            seed=spec.seed,
            surplus_blocks=self.surplus_blocks,
        )

    def install(self, builder) -> WorkloadPlan:
        replica_stage = builder._need("replica_stage")
        commands = self.commands_for(builder.spec)
        if not builder.trusted:
            # The replicated client tracks its submissions for f+1-ack
            # acceptance; the trusted baseline's leaves ack via the control
            # node, matching the seed runner.
            for command in commands:
                replica_stage.client.submitted[command.command_id] = command
        fill_txpools(replica_stage.replicas.values(), commands)
        return WorkloadPlan(commands=commands)

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "surplus_blocks": self.surplus_blocks}

    def is_default(self) -> bool:
        return self.surplus_blocks == 4


def default_open_loop_duration(spec) -> float:
    """The arrival window used when an open-loop spec names no duration.

    Spans the proposal schedule — one ``block_interval`` (or, when the
    interval is 0, one ``hop_delay``) per block plus one slack period — so
    the stream covers the run without outliving it by orders of magnitude.
    """
    period = max(spec.block_interval, spec.hop_delay, 1e-9)
    return (spec.target_height + 1) * period


@dataclass
class OpenLoopPoisson(WorkloadEngine):
    """Seeded Poisson arrivals, injected as simulator events.

    Arrivals are drawn once, at build time, from the spec-derived stream
    ``derive_seed(seed, "workload", "open-loop", rate, clients)`` and
    scheduled as ``workload:arrival`` events; each event registers the
    command with the tracking client and submits it to every live replica
    through pool admission.  A command that arrives after the leader
    stopped proposing (or that a bounded pool rejects) simply never
    commits — that *is* the overload behaviour the SLO metrics report.
    """

    #: Mean arrivals per unit of virtual time (Poisson process rate λ).
    rate: float = 1.0
    #: Arrival window length; ``None`` uses :func:`default_open_loop_duration`.
    duration: Optional[float] = None
    #: Simulated clients multiplexed over the id namespace.
    clients: int = 1
    #: Payload size override; ``None`` uses ``spec.command_payload_bytes``.
    payload_size_bytes: Optional[int] = None

    kind = "open-loop"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"open-loop rate must be positive, got {self.rate}")
        if self.duration is not None and self.duration < 0:
            raise ValueError("open-loop duration cannot be negative")
        if self.clients < 1:
            raise ValueError("open-loop needs at least one simulated client")
        if self.payload_size_bytes is not None and self.payload_size_bytes < 0:
            raise ValueError("payload size cannot be negative")

    def commands_for(self, spec) -> List[Command]:
        rng = SeededRNG(
            derive_seed(spec.seed, "workload", "open-loop", self.rate, self.clients)
        )
        duration = (
            self.duration if self.duration is not None else default_open_loop_duration(spec)
        )
        payload = (
            self.payload_size_bytes
            if self.payload_size_bytes is not None
            else spec.command_payload_bytes
        )
        commands: List[Command] = []
        counters = [0] * self.clients
        now = 0.0
        while len(commands) < MAX_GENERATED_COMMANDS:
            now += rng.exponential(1.0 / self.rate)
            if now > duration:
                break
            client = rng.randint(0, self.clients - 1) if self.clients > 1 else 0
            index = counters[client]
            counters[client] += 1
            commands.append(
                Command(
                    command_id=f"ol{client}-{index}",
                    client_id=0,
                    payload_size_bytes=payload,
                    payload_digest=rng.bytes(8).hex(),
                    arrival_time=now,
                )
            )
        return commands

    def install(self, builder) -> WorkloadPlan:
        replica_stage = builder._need("replica_stage")
        commands = self.commands_for(builder.spec)
        _schedule_arrivals(builder, replica_stage, commands)
        return WorkloadPlan(commands=commands, arrivals=tuple(commands))

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "duration": self.duration,
            "clients": self.clients,
            "payload_size_bytes": self.payload_size_bytes,
        }


@dataclass
class TraceReplay(WorkloadEngine):
    """Replay a timestamped command stream.

    The stream comes from a JSON file (a list of
    ``{"time": ..., "command_id": ..., "client_id": ..., "payload_size_bytes": ...}``
    objects; only ``time`` is required) or from inline ``entries``.
    ``describe`` always embeds the normalised entries, so a serialised spec
    replays identically on a machine without the original file.
    """

    #: Normalised entries: ``(time, command_id, client_id, payload_size_bytes)``.
    #: ``payload_size_bytes`` of ``None`` defers to the spec.
    entries: Tuple[Tuple[float, str, int, Optional[int]], ...] = ()
    #: Source file (provenance only; excluded from equality and schema).
    path: Optional[str] = field(default=None, compare=False)

    kind = "trace"

    def __post_init__(self) -> None:
        if self.path is not None and not self.entries:
            with open(self.path) as handle:
                raw = json.load(handle)
            self.entries = _normalise_trace_entries(raw)
        else:
            self.entries = _normalise_trace_entries(self.entries)
        seen: Set[str] = set()
        for time, command_id, _, _ in self.entries:
            if time < 0:
                raise ValueError(f"trace entry {command_id!r} has negative time {time}")
            if command_id in seen:
                raise ValueError(f"duplicate trace command id {command_id!r}")
            seen.add(command_id)

    def commands_for(self, spec) -> List[Command]:
        commands: List[Command] = []
        for time, command_id, client_id, payload in self.entries:
            commands.append(
                Command(
                    command_id=command_id,
                    client_id=client_id,
                    payload_size_bytes=(
                        payload if payload is not None else spec.command_payload_bytes
                    ),
                    payload_digest="",
                    arrival_time=time,
                )
            )
        return commands

    def install(self, builder) -> WorkloadPlan:
        replica_stage = builder._need("replica_stage")
        commands = self.commands_for(builder.spec)
        _schedule_arrivals(builder, replica_stage, commands)
        return WorkloadPlan(commands=commands, arrivals=tuple(commands))

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "entries": [
                {
                    "time": time,
                    "command_id": command_id,
                    "client_id": client_id,
                    "payload_size_bytes": payload,
                }
                for time, command_id, client_id, payload in self.entries
            ],
        }

    @classmethod
    def from_file(cls, path: str) -> "TraceReplay":
        return cls(path=path)


def _normalise_trace_entries(raw: Sequence[Any]) -> Tuple[Tuple[float, str, int, Optional[int]], ...]:
    """Accept dict or tuple entries; emit the canonical tuple form."""
    out: List[Tuple[float, str, int, Optional[int]]] = []
    for index, entry in enumerate(raw):
        if isinstance(entry, dict):
            time = entry.get("time")
            command_id = entry.get("command_id", f"tr{index}")
            client_id = entry.get("client_id", 0)
            payload = entry.get("payload_size_bytes")
        else:
            padded = tuple(entry) + (None,) * (4 - len(tuple(entry)))
            time, command_id, client_id, payload = padded[:4]
            command_id = command_id if command_id is not None else f"tr{index}"
            client_id = client_id if client_id is not None else 0
        if not isinstance(time, (int, float)) or isinstance(time, bool):
            raise ValueError(f"trace entry {index} has no numeric 'time': {entry!r}")
        out.append((float(time), str(command_id), int(client_id), payload))
    return tuple(out)


def _schedule_arrivals(builder, replica_stage, commands: Sequence[Command]) -> None:
    """Push one ``workload:arrival`` event per command (stream order).

    Events acquire queue sequence numbers here, in stage 5 — after every
    replica fail-stop timer (stage 4) and before the fault stage's own
    events — which is what makes open-loop runs byte-deterministic per
    seed.  Each arrival registers with the tracking client (replicated
    runs) and submits to every non-crashed replica through admission, in
    pid order.
    """
    client = replica_stage.client
    replicas = replica_stage.replicas
    trusted = builder.trusted
    ordered_pids = sorted(replicas)

    def deliver(command: Command) -> None:
        if not trusted:
            client.submitted[command.command_id] = command
        for pid in ordered_pids:
            replica = replicas[pid]
            if not replica.crashed:
                replica.submit_commands((command,))

    for command in commands:
        builder.sim.schedule_at(
            command.arrival_time,
            lambda command=command: deliver(command),
            label="workload:arrival",
        )


# -------------------------------------------------------------- serialisation
#: Engine classes by schema ``kind``.
WORKLOAD_KINDS = {
    ClosedLoopPreload.kind: ClosedLoopPreload,
    OpenLoopPoisson.kind: OpenLoopPoisson,
    TraceReplay.kind: TraceReplay,
}


def workload_from_dict(data: Dict[str, Any]) -> WorkloadEngine:
    """Rebuild an engine from its :meth:`WorkloadEngine.describe` output."""
    if not isinstance(data, dict):
        raise ValueError(f"workload schema must be an object, got {type(data).__name__}")
    kind = data.get("kind")
    if kind == ClosedLoopPreload.kind:
        return ClosedLoopPreload(surplus_blocks=data.get("surplus_blocks", 4))
    if kind == OpenLoopPoisson.kind:
        return OpenLoopPoisson(
            rate=data.get("rate", 1.0),
            duration=data.get("duration"),
            clients=data.get("clients", 1),
            payload_size_bytes=data.get("payload_size_bytes"),
        )
    if kind == TraceReplay.kind:
        return TraceReplay(entries=_normalise_trace_entries(data.get("entries", ())))
    raise ValueError(
        f"unknown workload kind {kind!r}; known: {sorted(WORKLOAD_KINDS)}"
    )


def parse_workload(text: str) -> WorkloadEngine:
    """Parse a CLI workload flag.

    Accepted forms: ``closed-loop``, ``open-loop:<rate>``,
    ``open-loop:<rate>:<clients>``, ``open-loop:<rate>:<clients>:<duration>``
    and ``trace:<file.json>``.
    """
    head, _, rest = text.partition(":")
    if head == "closed-loop":
        return ClosedLoopPreload()
    if head == "open-loop":
        parts = rest.split(":") if rest else []
        if not parts or not parts[0]:
            raise ValueError("open-loop needs a rate: --workload open-loop:<rate>")
        try:
            rate = float(parts[0])
            clients = int(parts[1]) if len(parts) > 1 else 1
            duration = float(parts[2]) if len(parts) > 2 else None
        except ValueError as error:
            raise ValueError(f"bad open-loop workload {text!r}: {error}") from None
        return OpenLoopPoisson(rate=rate, clients=clients, duration=duration)
    if head == "trace":
        if not rest:
            raise ValueError("trace needs a file: --workload trace:<file.json>")
        return TraceReplay(path=rest)
    raise ValueError(
        f"unknown workload {text!r}; expected closed-loop, "
        f"open-loop:<rate>[:<clients>[:<duration>]] or trace:<file>"
    )


def workload_command_ids(spec) -> Set[str]:
    """The command ids the spec's workload generates (engine-aware).

    The liveness invariant's "everything committed came from the workload"
    check routes through here, so it holds for open-loop and trace runs
    exactly as it does for preloads.
    """
    engine = getattr(spec, "workload", None)
    if engine is None:
        engine = ClosedLoopPreload()
    return engine.command_ids(spec)
