"""Pluggable workload engines: how client traffic enters a deployment.

The seed behaviour — generate one deterministic command stream and
pre-load it into every replica's txpool before the run starts — is one
engine among several:

* :class:`ClosedLoopPreload` — the byte-identical shim over the seed's
  ``fill_txpools`` path (golden trace fingerprints pin this);
* :class:`OpenLoopPoisson` — seeded Poisson arrivals multiplexing many
  simulated clients, injected as simulator events during the run;
* :class:`TraceReplay` — a timestamped command stream replayed from a
  file (or inline entries).

Engines are declarative values: they serialise through
:meth:`WorkloadEngine.describe` / :func:`workload_from_dict` (the
``workload`` section of the :class:`~repro.eval.runner.DeploymentSpec`
schema), generate their arrival stream as a pure function of the spec
(so invariants and property tests can regenerate it without a
simulator), and install themselves into a
:class:`~repro.session.builder.SessionBuilder` at stage 5.
"""

from repro.workload.engine import (
    ClosedLoopPreload,
    OpenLoopPoisson,
    TraceReplay,
    WorkloadEngine,
    WorkloadPlan,
    default_open_loop_duration,
    parse_workload,
    workload_command_ids,
    workload_from_dict,
)

__all__ = [
    "ClosedLoopPreload",
    "OpenLoopPoisson",
    "TraceReplay",
    "WorkloadEngine",
    "WorkloadPlan",
    "default_open_loop_duration",
    "parse_workload",
    "workload_command_ids",
    "workload_from_dict",
]
