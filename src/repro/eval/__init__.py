"""Experiment harness: runner, workloads and per-figure experiments."""

from repro.eval.runner import DeploymentSpec, ProtocolRunner, RunResult, run_protocol
from repro.eval.workloads import (
    generate_commands,
    commands_for_run,
    fill_txpools,
    client_for_run,
    SensorReadingWorkload,
)
from repro.eval import experiments
from repro.eval.tables import format_table, format_series

__all__ = [
    "DeploymentSpec",
    "ProtocolRunner",
    "RunResult",
    "run_protocol",
    "generate_commands",
    "commands_for_run",
    "fill_txpools",
    "client_for_run",
    "SensorReadingWorkload",
    "experiments",
    "format_table",
    "format_series",
]
