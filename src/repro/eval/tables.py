"""Plain-text table / series formatting for experiment output.

Benchmarks and examples print the same rows and series the paper's tables
and figures report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned plain-text table."""
    materialized = [[_fmt(cell, float_format) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Mapping[object, float], unit: str = "mJ") -> str:
    """Render one figure series as ``name: x=value unit, ...``."""
    parts = [f"{x}={value:.2f}{unit}" for x, value in points.items()]
    return f"{name}: " + ", ".join(parts)


def _fmt(cell: object, float_format: str) -> str:
    if isinstance(cell, float):
        return float_format.format(cell)
    if cell is None:
        return "-"
    return str(cell)
