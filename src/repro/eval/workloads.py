"""Synthetic workload generation for experiments and benchmarks.

The paper's CPS workload is simple: each consensus unit carries a small
data payload (|b_i| of 16, 128 or 256 bytes in Fig. 2d) that the nodes
must agree on.  The generators here produce deterministic command streams
of a configurable size and pre-load them into every replica's transaction
pool, mirroring the paper's assumption that client costs are excluded from
the protocol energy.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.client import Client, CommandFactory
from repro.core.types import Command
from repro.sim.rng import SeededRNG


def generate_commands(
    count: int,
    payload_size_bytes: int = 16,
    client_id: int = 0,
    seed: int = 0,
) -> List[Command]:
    """Generate ``count`` deterministic commands of the given payload size."""
    factory = CommandFactory(
        client_id=client_id,
        payload_size_bytes=payload_size_bytes,
        rng=SeededRNG(seed).child("workload", client_id),
    )
    return factory.batch(count)


def commands_for_run(
    target_height: int,
    batch_size: int,
    payload_size_bytes: int = 16,
    seed: int = 0,
    surplus_blocks: int = 4,
) -> List[Command]:
    """Enough commands to fill every block of a run (plus a small surplus).

    The surplus covers blocks proposed during view changes or abandoned by
    an equivocating leader, so the pool never runs dry mid-experiment.
    """
    if target_height < 0 or batch_size < 0:
        raise ValueError("target_height and batch_size cannot be negative")
    total = (target_height + surplus_blocks) * max(batch_size, 1)
    return generate_commands(total, payload_size_bytes, seed=seed)


def fill_txpools(replicas: Iterable, commands: Sequence[Command]) -> None:
    """Load the same command stream into every replica's pool."""
    for replica in replicas:
        replica.submit_commands(commands)


def client_for_run(f: int, payload_size_bytes: int = 16, seed: int = 0) -> Client:
    """A client configured for f+1-ack acceptance."""
    return Client(client_id=0, f=f, payload_size_bytes=payload_size_bytes, seed=seed)


class SensorReadingWorkload:
    """A domain-flavoured workload: periodic sensor readings from CPS nodes.

    Used by the example applications (soil-moisture monitoring, drone
    swarm) to produce commands whose payloads look like sensor reports:
    a node id, a timestamp and a reading vector.
    """

    def __init__(self, n_sensors: int, reading_bytes: int = 16, seed: int = 0) -> None:
        if n_sensors < 1:
            raise ValueError("need at least one sensor")
        self.n_sensors = n_sensors
        self.reading_bytes = reading_bytes
        self.rng = SeededRNG(seed).child("sensor-workload")
        self._epoch = 0

    def next_epoch(self) -> List[Command]:
        """One reading per sensor for the next measurement epoch."""
        self._epoch += 1
        commands = []
        for sensor in range(self.n_sensors):
            digest = self.rng.bytes(8).hex()
            commands.append(
                Command(
                    command_id=f"sensor{sensor}-epoch{self._epoch}",
                    client_id=sensor,
                    payload_size_bytes=self.reading_bytes,
                    payload_digest=digest,
                )
            )
        return commands

    def epochs(self, count: int) -> List[Command]:
        """Readings for ``count`` consecutive epochs, flattened."""
        result: List[Command] = []
        for _ in range(count):
            result.extend(self.next_epoch())
        return result
