"""Per-table and per-figure experiments (the reproduction of Section 5).

Every public function here regenerates the data behind one table or figure
of the paper.  The benchmark suite in ``benchmarks/`` simply calls these
functions and prints/validates the resulting rows or series, so the same
code path backs both `pytest benchmarks/ --benchmark-only` and ad-hoc use
from examples or a notebook.

Paper artefact -> function map:

=============  ==========================================
Table 1        :func:`table1_media_energy`
Table 2        :func:`table2_signature_energy`
Table 3        :func:`table3_complexity`
Figure 1       :func:`fig1_feasible_region`
Figure 2a      :func:`fig2a_kcast_reliability`
Figure 2b      :func:`fig2b_unicast_vs_multicast`
Figure 2c      :func:`fig2c_leader_vs_replica`
Figure 2d      :func:`fig2d_block_sizes`
Figure 2e      :func:`fig2e_view_change_energy`
Figure 2f      :func:`fig2f_total_energy_vs_n`
Figure 3       :func:`fig3_eesmr_vs_sync_hotstuff`
Section 5.7    :func:`headline_ratios`
=============  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.adversary import FaultPlan
from repro.crypto.energy_costs import SIGNATURE_ENERGY_TABLE
from repro.energy.feasibility import FeasibleRegion, feasible_region
from repro.eval.runner import DeploymentSpec, ProtocolRunner, RunResult
from repro.radio.ble import BleAdvertisementKCast
from repro.radio.gatt import BleGattUnicast
from repro.radio.media import TABLE1_MEDIA_ENERGY_MJ
from repro.radio.reliability import AdvertisementLossModel, ReliabilityPoint

#: Default number of consensus units per simulated run.  Small enough to
#: keep benchmarks fast, large enough to amortise start-up effects.
DEFAULT_BLOCKS = 4


# --------------------------------------------------------------------------
# Table 1 and Table 2: primitive measurements
# --------------------------------------------------------------------------
def table1_media_energy() -> List[dict]:
    """Rows of Table 1: per-message energy for BLE / 4G LTE / WiFi."""
    rows = []
    for row in TABLE1_MEDIA_ENERGY_MJ:
        rows.append(
            {
                "message_size_bytes": row.message_size_bytes,
                "ble_send_mj": row.ble_send_mj,
                "ble_recv_mj": row.ble_recv_mj,
                "ble_multicast_mj": row.ble_multicast_mj,
                "lte_send_mj": row.lte_send_mj,
                "lte_recv_mj": row.lte_recv_mj,
                "wifi_send_mj": row.wifi_send_mj,
                "wifi_recv_mj": row.wifi_recv_mj,
            }
        )
    return rows


def table2_signature_energy() -> List[dict]:
    """Rows of Table 2: signing and verification energy per scheme."""
    rows = []
    for name in sorted(SIGNATURE_ENERGY_TABLE):
        cost = SIGNATURE_ENERGY_TABLE[name]
        rows.append(
            {
                "scheme": cost.name,
                "family": cost.family,
                "parameters": cost.parameters,
                "sign_j": cost.sign_joules,
                "verify_j": cost.verify_joules,
            }
        )
    return rows


# --------------------------------------------------------------------------
# Table 3: complexity comparison (measured operation counts)
# --------------------------------------------------------------------------
@dataclass
class ComplexityRow:
    """Measured per-block operation counts for one protocol at one system size."""

    protocol: str
    n: int
    k: int
    blocks: int
    transmissions_per_block: float
    bytes_per_block: float
    signs_per_block: float
    verifies_per_block: float


def table3_complexity(
    system_sizes: Sequence[Tuple[int, int]] = ((7, 3), (13, 6)),
    k: int = 3,
    blocks: int = DEFAULT_BLOCKS,
    seed: int = 11,
) -> List[ComplexityRow]:
    """Measured per-block communication and public-key operation counts.

    The asymptotic claims of Table 3 (EESMR: O(nd) communication, O(1)
    signing, O(n) verification per block; certificate-based baselines:
    O(n^2 d) communication, O(n) signing, O(n^2) verification) show up here
    as the growth of the measured per-block counts between the two system
    sizes.
    """
    runner = ProtocolRunner()
    rows: List[ComplexityRow] = []
    for protocol in ("eesmr", "sync-hotstuff", "optsync"):
        for n, f in system_sizes:
            spec = DeploymentSpec(
                protocol=protocol,
                n=n,
                f=min(f, (n - 1) // 2),
                k=min(k, n - 1),
                target_height=blocks,
                seed=seed,
            )
            result = runner.run(spec)
            committed = max(1, result.committed_blocks)
            rows.append(
                ComplexityRow(
                    protocol=protocol,
                    n=n,
                    k=spec.k,
                    blocks=committed,
                    transmissions_per_block=result.network.physical_transmissions / committed,
                    bytes_per_block=result.network.physical_bytes / committed,
                    signs_per_block=result.sign_operations / committed,
                    verifies_per_block=result.verify_operations / committed,
                )
            )
    return rows


#: The asymptotic comparison exactly as printed in Table 3 of the paper.
TABLE3_ASYMPTOTIC = [
    {
        "protocol": "Abraham et al.",
        "best_communication": "O(n^2 d)",
        "best_sign": "O(n)",
        "best_verify": "O(n^2)",
        "best_block_period": "-",
        "worst_communication": "O(n^3 d)",
        "worst_block_period": "-",
    },
    {
        "protocol": "Sync HotStuff",
        "best_communication": "O(n^2 d)",
        "best_sign": "O(n)",
        "best_verify": "O(n^2)",
        "best_block_period": "2 delta",
        "worst_communication": "O(n^3 d)",
        "worst_block_period": "14 Delta",
    },
    {
        "protocol": "OptSync",
        "best_communication": "O(n^2 d)",
        "best_sign": "O(n)",
        "best_verify": "O(n^2)",
        "best_block_period": "2 delta",
        "worst_communication": "O(n^3 d)",
        "worst_block_period": "14 Delta",
    },
    {
        "protocol": "Rotating BFT SMR",
        "best_communication": "O(n^2 d)",
        "best_sign": "O(n)",
        "best_verify": "O(n^2)",
        "best_block_period": "2 delta",
        "worst_communication": "O(n^2 d)",
        "worst_block_period": "14 Delta",
    },
    {
        "protocol": "EESMR",
        "best_communication": "O(n d)",
        "best_sign": "O(1)",
        "best_verify": "O(n)",
        "best_block_period": "0",
        "worst_communication": "O(n^3 d)",
        "worst_block_period": "21 Delta",
    },
]


# --------------------------------------------------------------------------
# Figure 1: feasible region
# --------------------------------------------------------------------------
def fig1_feasible_region(
    message_sizes: Sequence[int] = tuple(range(256, 4096 + 1, 256)),
    node_counts: Sequence[int] = tuple(range(4, 33, 2)),
) -> FeasibleRegion:
    """EESMR (WiFi) vs trusted baseline (4G) energy difference over (m, n)."""
    return feasible_region(message_sizes=message_sizes, node_counts=node_counts)


# --------------------------------------------------------------------------
# Figure 2a / 2b: BLE k-cast characterisation
# --------------------------------------------------------------------------
def fig2a_kcast_reliability(
    ks: Sequence[int] = (1, 3, 7), max_redundancy: int = 10
) -> Dict[int, List[ReliabilityPoint]]:
    """Failure rate vs energy for k-casts of different degree (Fig. 2a)."""
    radio = BleAdvertisementKCast()
    model: AdvertisementLossModel = radio.loss_model
    curves: Dict[int, List[ReliabilityPoint]] = {}
    for k in ks:
        curves[k] = model.tradeoff_curve(
            k,
            radio.tx_energy_per_packet_mj,
            radio.rx_energy_per_packet_mj,
            max_redundancy=max_redundancy,
        )
    return curves


def fig2b_unicast_vs_multicast(
    payloads: Sequence[int] = (100, 200, 300, 400, 500),
    k: int = 7,
) -> List[dict]:
    """Energy of reliable k-casts vs equivalent unicasts for growing payloads (Fig. 2b)."""
    kcast = BleAdvertisementKCast()
    unicast = BleGattUnicast()
    rows = []
    for payload in payloads:
        kcast_cost = kcast.transmission_cost(payload, k)
        uni = unicast.transmission_cost(payload)
        rows.append(
            {
                "payload_bytes": payload,
                "unicast_send_dout1_mj": uni.sender_energy_j * 1000,
                "unicast_recv_din1_mj": uni.receiver_energy_j * 1000,
                "unicast_send_dout_k_mj": unicast.fanout_send_energy_j(payload, k) * 1000,
                "unicast_recv_din_k_mj": k * uni.receiver_energy_j * 1000,
                "kcast_send_mj": kcast_cost.sender_energy_j * 1000,
                "kcast_recv_mj": kcast_cost.per_receiver_energy_j * 1000,
            }
        )
    return rows


# --------------------------------------------------------------------------
# Figure 2c / 2d: EESMR steady-state energy vs k and block size
# --------------------------------------------------------------------------
@dataclass
class SteadyStatePoint:
    """Per-SMR energy of an honest EESMR run at one parameter point."""

    n: int
    k: int
    payload_bytes: int
    blocks: int
    leader_mj_per_block: float
    replica_mj_per_block: float
    total_mj_per_block: float
    result: RunResult = field(repr=False, default=None)


def _steady_state_point(
    n: int, f: int, k: int, payload: int, blocks: int, seed: int
) -> SteadyStatePoint:
    spec = DeploymentSpec(
        protocol="eesmr",
        n=n,
        f=f,
        k=k,
        target_height=blocks,
        command_payload_bytes=payload,
        seed=seed,
    )
    result = ProtocolRunner().run(spec)
    return SteadyStatePoint(
        n=n,
        k=k,
        payload_bytes=payload,
        blocks=result.committed_blocks,
        leader_mj_per_block=result.leader_energy_per_block_mj,
        replica_mj_per_block=result.replica_energy_per_block_mj,
        total_mj_per_block=result.energy_per_block_mj,
        result=result,
    )


def fig2c_leader_vs_replica(
    n: int = 15,
    ks: Sequence[int] = (2, 3, 4, 5, 6, 7),
    payload_bytes: int = 16,
    blocks: int = DEFAULT_BLOCKS,
    seed: int = 21,
) -> List[SteadyStatePoint]:
    """EESMR leader vs replica energy per SMR as k grows (Fig. 2c)."""
    f = min((n - 1) // 2, min(ks) - 0)  # f bounded by connectivity (f < k)
    points = []
    for k in ks:
        points.append(_steady_state_point(n, min(f, k - 1) if k > 1 else 0, k, payload_bytes, blocks, seed))
    return points


def fig2d_block_sizes(
    n: int = 15,
    ks: Sequence[int] = (2, 3, 4, 5, 6, 7),
    payloads: Sequence[int] = (16, 128, 256),
    blocks: int = DEFAULT_BLOCKS,
    seed: int = 22,
) -> Dict[int, List[SteadyStatePoint]]:
    """EESMR leader energy per SMR for several block sizes (Fig. 2d)."""
    series: Dict[int, List[SteadyStatePoint]] = {}
    for payload in payloads:
        series[payload] = [
            _steady_state_point(n, max(0, min((n - 1) // 2, k - 1)), k, payload, blocks, seed)
            for k in ks
        ]
    return series


# --------------------------------------------------------------------------
# Figure 2e: view-change energy
# --------------------------------------------------------------------------
@dataclass
class ViewChangePoint:
    """Energy of one view-change scenario at one fault level."""

    scenario: str
    n: int
    f: int
    k: int
    view_changes: int
    leader_mj: float
    mean_correct_mj: float
    total_correct_mj: float


def _view_change_point(
    scenario: str, n: int, f: int, k: int, blocks: int, seed: int
) -> ViewChangePoint:
    behaviour = "equivocate" if scenario == "equivocation" else "silent_leader"
    fault_plan = FaultPlan(faulty=(0,), behaviour=behaviour, trigger_round=3)
    spec = DeploymentSpec(
        protocol="eesmr",
        n=n,
        f=f,
        k=k,
        target_height=blocks,
        seed=seed,
        fault_plan=fault_plan,
    )
    result = ProtocolRunner().run(spec)
    new_leader = result.config.leader_of(2)
    leader_mj = result.energy.per_node_joules.get(new_leader, 0.0) * 1000
    correct = [
        joules * 1000
        for pid, joules in result.energy.per_node_joules.items()
        if pid not in fault_plan.faulty
    ]
    return ViewChangePoint(
        scenario=scenario,
        n=n,
        f=f,
        k=k,
        view_changes=result.view_changes,
        leader_mj=leader_mj,
        mean_correct_mj=sum(correct) / len(correct) if correct else 0.0,
        total_correct_mj=result.correct_energy_mj,
    )


def fig2e_view_change_energy(
    n: int = 15,
    fs: Sequence[int] = (1, 2, 3, 4, 5, 6),
    blocks: int = 2,
    seed: int = 23,
) -> List[ViewChangePoint]:
    """Energy of equivocation / no-progress view changes and honest SMR vs f (Fig. 2e).

    As in the paper, the k-cast degree is taken as k = f + 1 so the system
    is exactly f-connected at every fault level.
    """
    points: List[ViewChangePoint] = []
    for f in fs:
        k = f + 1
        points.append(_view_change_point("equivocation", n, f, k, blocks, seed))
        points.append(_view_change_point("no_progress", n, f, k, blocks, seed))
        honest = _steady_state_point(n, f, k, 16, blocks, seed)
        points.append(
            ViewChangePoint(
                scenario="honest_smr",
                n=n,
                f=f,
                k=k,
                view_changes=0,
                leader_mj=honest.leader_mj_per_block,
                mean_correct_mj=honest.replica_mj_per_block,
                total_correct_mj=honest.total_mj_per_block,
            )
        )
    return points


# --------------------------------------------------------------------------
# Figure 2f: total energy vs n, EESMR vs Sync HotStuff
# --------------------------------------------------------------------------
@dataclass
class TotalEnergyPoint:
    """Total correct-node energy per SMR at one (protocol, n, k) point."""

    protocol: str
    n: int
    k: int
    total_mj_per_block: float


def fig2f_total_energy_vs_n(
    ns: Sequence[int] = (4, 5, 6, 7, 8, 9),
    ks: Sequence[int] = (3, 5),
    blocks: int = DEFAULT_BLOCKS,
    seed: int = 24,
) -> List[TotalEnergyPoint]:
    """Total correct-node energy per SMR vs n for EESMR and Sync HotStuff (Fig. 2f)."""
    runner = ProtocolRunner()
    points: List[TotalEnergyPoint] = []
    for protocol in ("eesmr", "sync-hotstuff"):
        for k in ks:
            for n in ns:
                if k > n - 1:
                    continue
                f = max(0, min((n - 1) // 2, k - 1))
                spec = DeploymentSpec(
                    protocol=protocol,
                    n=n,
                    f=f,
                    k=k,
                    target_height=blocks,
                    seed=seed,
                )
                result = runner.run(spec)
                points.append(
                    TotalEnergyPoint(
                        protocol=protocol,
                        n=n,
                        k=k,
                        total_mj_per_block=result.energy_per_block_mj,
                    )
                )
    return points


# --------------------------------------------------------------------------
# Figure 3 and the Section 5.7 headline ratios
# --------------------------------------------------------------------------
@dataclass
class Fig3Point:
    """Leader energy at one fault level for one protocol/scenario."""

    protocol: str
    scenario: str
    f: int
    k: int
    leader_mj: float


def fig3_eesmr_vs_sync_hotstuff(
    n: int = 13,
    fs: Sequence[int] = (1, 2, 3, 4, 5, 6),
    blocks: int = 2,
    seed: int = 25,
) -> List[Fig3Point]:
    """Leader energy to tolerate f faults: EESMR vs Sync HotStuff, honest and VC (Fig. 3)."""
    runner = ProtocolRunner()
    points: List[Fig3Point] = []
    for f in fs:
        k = f + 1
        for protocol in ("eesmr", "sync-hotstuff"):
            honest_spec = DeploymentSpec(
                protocol=protocol, n=n, f=f, k=k, target_height=blocks, seed=seed
            )
            honest = runner.run(honest_spec)
            points.append(
                Fig3Point(
                    protocol=protocol,
                    scenario="honest_smr",
                    f=f,
                    k=k,
                    leader_mj=honest.leader_energy_per_block_mj,
                )
            )
            fault_plan = (
                FaultPlan(faulty=(0,), behaviour="silent_leader", trigger_round=3)
                if protocol == "eesmr"
                else FaultPlan(faulty=(0,), behaviour="crash", crash_time=0.0)
            )
            vc_spec = DeploymentSpec(
                protocol=protocol,
                n=n,
                f=f,
                k=k,
                target_height=blocks,
                seed=seed,
                fault_plan=fault_plan,
            )
            vc = runner.run(vc_spec)
            new_leader = vc.config.leader_of(2)
            points.append(
                Fig3Point(
                    protocol=protocol,
                    scenario="view_change",
                    f=f,
                    k=k,
                    leader_mj=vc.energy.per_node_joules.get(new_leader, 0.0) * 1000,
                )
            )
    return points


@dataclass
class HeadlineRatios:
    """The Section 5.7 headline numbers."""

    n: int
    k: int
    eesmr_steady_mj_per_block: float
    sync_hotstuff_steady_mj_per_block: float
    steady_state_ratio: float
    eesmr_view_change_mj: float
    sync_hotstuff_view_change_mj: float
    view_change_ratio: float


def headline_ratios(
    n: int = 13, f: int = 6, k: int = 7, blocks: int = 3, seed: int = 26
) -> HeadlineRatios:
    """EESMR vs Sync HotStuff: steady-state advantage and view-change penalty.

    The paper reports Sync HotStuff being ~2.8x more energy hungry than
    EESMR when the leader is correct, and EESMR costing ~2x more than
    Sync HotStuff during a view change.
    """
    runner = ProtocolRunner()
    eesmr_honest = runner.run(
        DeploymentSpec(protocol="eesmr", n=n, f=f, k=k, target_height=blocks, seed=seed)
    )
    shs_honest = runner.run(
        DeploymentSpec(protocol="sync-hotstuff", n=n, f=f, k=k, target_height=blocks, seed=seed)
    )
    eesmr_vc = runner.run(
        DeploymentSpec(
            protocol="eesmr",
            n=n,
            f=f,
            k=k,
            target_height=blocks,
            seed=seed,
            fault_plan=FaultPlan(faulty=(0,), behaviour="silent_leader", trigger_round=3),
        )
    )
    shs_vc = runner.run(
        DeploymentSpec(
            protocol="sync-hotstuff",
            n=n,
            f=f,
            k=k,
            target_height=blocks,
            seed=seed,
            fault_plan=FaultPlan(faulty=(0,), behaviour="crash", crash_time=0.0),
        )
    )
    eesmr_vc_energy = max(
        0.0, eesmr_vc.correct_energy_mj - eesmr_vc.committed_blocks * eesmr_honest.energy_per_block_mj
    )
    shs_vc_energy = max(
        0.0, shs_vc.correct_energy_mj - shs_vc.committed_blocks * shs_honest.energy_per_block_mj
    )
    return HeadlineRatios(
        n=n,
        k=k,
        eesmr_steady_mj_per_block=eesmr_honest.energy_per_block_mj,
        sync_hotstuff_steady_mj_per_block=shs_honest.energy_per_block_mj,
        steady_state_ratio=shs_honest.energy_per_block_mj / eesmr_honest.energy_per_block_mj,
        eesmr_view_change_mj=eesmr_vc_energy,
        sync_hotstuff_view_change_mj=shs_vc_energy,
        view_change_ratio=(eesmr_vc_energy / shs_vc_energy) if shs_vc_energy > 0 else float("inf"),
    )
