"""Experiment runner: build a deployment, run it, collect metrics.

The runner is the reproduction's equivalent of the paper's test-bed
harness: given a :class:`DeploymentSpec` it builds the topology, network,
key material and replicas, pre-loads the workload, runs the simulation to
quiescence, checks safety, and returns a :class:`RunResult` with the
energy, communication and protocol metrics every figure needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.adversary import FaultPlan, replica_class_for
from repro.core.baselines.optsync import OptSyncReplica
from repro.core.baselines.sync_hotstuff import SyncHotStuffReplica
from repro.core.baselines.trusted_baseline import TrustedBaselineReplica, TrustedControlNode
from repro.core.client import AckRouter
from repro.core.config import ProtocolConfig
from repro.core.eesmr.replica import EesmrReplica
from repro.core.ledger import SafetyChecker, SafetyReport
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureScheme, make_scheme
from repro.energy.ledger import ClusterEnergyLedger, EnergyReport
from repro.energy.meter import EnergyCategory
from repro.net.hypergraph import Hypergraph
from repro.net.network import NetworkStats, SimulatedNetwork
from repro.net.topology import (
    fully_connected_topology,
    ring_kcast_topology,
    star_topology,
    unicast_ring_topology,
)
from repro.radio.media import MediumUnicastAdapter, lte_medium
from repro.sim.rng import SeededRNG
from repro.sim.scheduler import Simulator
from repro.eval.workloads import client_for_run, commands_for_run, fill_txpools

#: Names accepted by DeploymentSpec.protocol.
PROTOCOLS = ("eesmr", "sync-hotstuff", "optsync", "trusted-baseline")


@dataclass
class DeploymentSpec:
    """Everything needed to reproduce one protocol run."""

    protocol: str = "eesmr"
    n: int = 7
    f: int = 1
    k: int = 2
    topology: str = "ring-kcast"
    hop_delay: float = 1.0
    delta: Optional[float] = None
    signature_scheme: str = "rsa-1024"
    batch_size: int = 1
    command_payload_bytes: int = 16
    target_height: int = 5
    block_interval: float = 0.0
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    seed: int = 0
    charge_sleep: bool = False
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; known: {PROTOCOLS}")
        if self.k < 1 or self.k > self.n - 1:
            raise ValueError(f"k must be in [1, n-1], got k={self.k}, n={self.n}")


@dataclass
class RunResult:
    """Metrics collected from one run."""

    spec: DeploymentSpec
    config: ProtocolConfig
    energy: EnergyReport
    safety: SafetyReport
    network: NetworkStats
    sim_time: float
    committed_heights: Dict[int, int]
    min_committed_height: int
    view_changes: int
    equivocations_detected: int
    blames_sent: int
    sign_operations: int
    verify_operations: int
    replica_snapshots: Dict[int, dict]

    # ------------------------------------------------------------- derived
    @property
    def committed_blocks(self) -> int:
        """Consensus units completed by every correct node."""
        return self.min_committed_height

    @property
    def correct_energy_j(self) -> float:
        return self.energy.correct_total_joules

    @property
    def correct_energy_mj(self) -> float:
        return self.energy.correct_total_joules * 1000.0

    @property
    def energy_per_block_mj(self) -> float:
        """Total correct-node energy per committed consensus unit (mJ)."""
        blocks = max(1, self.committed_blocks)
        return self.correct_energy_mj / blocks

    @property
    def leader_energy_mj(self) -> float:
        return self.energy.leader_joules * 1000.0

    @property
    def leader_energy_per_block_mj(self) -> float:
        blocks = max(1, self.committed_blocks)
        return self.leader_energy_mj / blocks

    @property
    def replica_energy_per_block_mj(self) -> float:
        blocks = max(1, self.committed_blocks)
        return self.energy.mean_replica_joules * 1000.0 / blocks


class ProtocolRunner:
    """Builds and executes deployments described by :class:`DeploymentSpec`."""

    def __init__(self, max_events: int = 2_000_000) -> None:
        self.max_events = max_events

    # ------------------------------------------------------------ topology
    def build_topology(self, spec: DeploymentSpec) -> Hypergraph:
        """The hypergraph for a spec (ring k-cast by default, as in the paper)."""
        if spec.topology == "ring-kcast":
            return ring_kcast_topology(spec.n, spec.k)
        if spec.topology == "fully-connected":
            return fully_connected_topology(spec.n)
        if spec.topology == "unicast-ring":
            return unicast_ring_topology(spec.n, spec.k)
        if spec.topology == "star":
            return star_topology(spec.n + 1, center=spec.n)
        raise ValueError(f"unknown topology {spec.topology!r}")

    def compute_delta(self, spec: DeploymentSpec, topology: Hypergraph) -> float:
        """A Δ that upper-bounds flooded delivery plus a unicast response."""
        if spec.delta is not None:
            return spec.delta
        diameter = max(1, topology.diameter())
        return (diameter + 2) * spec.hop_delay

    # --------------------------------------------------------------- running
    def run(self, spec: DeploymentSpec) -> RunResult:
        """Execute one deployment to quiescence and collect its metrics."""
        if spec.protocol == "trusted-baseline":
            return self._run_trusted_baseline(spec)
        return self._run_replicated(spec)

    # ----------------------------------------------------- replicated runs
    def _run_replicated(self, spec: DeploymentSpec) -> RunResult:
        sim = Simulator()
        rng = SeededRNG(spec.seed)
        topology = self.build_topology(spec)
        delta = self.compute_delta(spec, topology)
        ledger = ClusterEnergyLedger(topology.nodes)
        network = SimulatedNetwork(
            sim,
            topology,
            ledger,
            rng=rng.child("network"),
            hop_delay=spec.hop_delay,
            jitter=spec.jitter,
        )
        keystore = KeyStore(seed=spec.seed)
        keystore.generate(topology.nodes)
        scheme = make_scheme(spec.signature_scheme, keystore=keystore)
        config = ProtocolConfig(
            n=spec.n,
            f=spec.f,
            delta=delta,
            signature_scheme=spec.signature_scheme,
            batch_size=spec.batch_size,
            command_payload_bytes=spec.command_payload_bytes,
            target_height=spec.target_height,
            block_interval=spec.block_interval,
        )
        client = client_for_run(spec.f, spec.command_payload_bytes, spec.seed)
        ack_router = AckRouter([client])

        replicas = self._build_replicas(sim, spec, config, scheme, network, ledger, ack_router)
        for replica in replicas.values():
            network.register(replica)
        for pid in spec.fault_plan.faulty:
            network.set_relay_policy(pid, lambda _origin, _message: False)

        commands = commands_for_run(
            spec.target_height,
            spec.batch_size,
            spec.command_payload_bytes,
            seed=spec.seed,
        )
        for command in commands:
            client.submitted[command.command_id] = command
        fill_txpools(replicas.values(), commands)

        for replica in replicas.values():
            replica.start()
        sim.run_until_idle(max_events=self.max_events)

        return self._collect(spec, config, sim, ledger, network, scheme, replicas)

    def _build_replicas(
        self,
        sim: Simulator,
        spec: DeploymentSpec,
        config: ProtocolConfig,
        scheme: SignatureScheme,
        network: SimulatedNetwork,
        ledger: ClusterEnergyLedger,
        ack_router: AckRouter,
    ) -> Dict[int, object]:
        replicas: Dict[int, object] = {}
        for pid in range(spec.n):
            meter = ledger.meter(pid)
            if spec.protocol == "eesmr":
                cls, kwargs = replica_class_for(spec.fault_plan, pid)
                replica = cls(sim, pid, config, scheme, network, meter, ack_router, **kwargs)
            else:
                base_cls = SyncHotStuffReplica if spec.protocol == "sync-hotstuff" else OptSyncReplica
                replica = base_cls(sim, pid, config, scheme, network, meter, ack_router)
                if pid in spec.fault_plan.faulty:
                    # Baseline faults are modelled as fail-stop at the trigger time.
                    replica.after(spec.fault_plan.crash_time, replica.crash, label="crash")
            replicas[pid] = replica
        return replicas

    # ----------------------------------------------- trusted baseline runs
    def _run_trusted_baseline(self, spec: DeploymentSpec) -> RunResult:
        sim = Simulator()
        rng = SeededRNG(spec.seed)
        control_id = spec.n
        topology = star_topology(spec.n + 1, center=control_id)
        ledger = ClusterEnergyLedger(topology.nodes)
        network = SimulatedNetwork(
            sim,
            topology,
            ledger,
            rng=rng.child("network"),
            unicast_radio=MediumUnicastAdapter(lte_medium()),
            hop_delay=spec.hop_delay,
            jitter=spec.jitter,
        )
        delta = spec.delta if spec.delta is not None else 3 * spec.hop_delay
        keystore = KeyStore(seed=spec.seed)
        keystore.generate(topology.nodes)
        scheme = make_scheme(spec.signature_scheme, keystore=keystore)
        config = ProtocolConfig(
            n=spec.n,
            f=spec.f,
            delta=delta,
            signature_scheme=spec.signature_scheme,
            batch_size=spec.batch_size,
            command_payload_bytes=spec.command_payload_bytes,
            target_height=spec.target_height,
            block_interval=spec.block_interval,
        )
        client = client_for_run(spec.f, spec.command_payload_bytes, spec.seed)
        ack_router = AckRouter([client])

        control = TrustedControlNode(
            sim, control_id, config, scheme, network, round_interval=max(spec.hop_delay, 0.5)
        )
        replicas: Dict[int, TrustedBaselineReplica] = {}
        for pid in range(spec.n):
            replicas[pid] = TrustedBaselineReplica(
                sim, pid, config, scheme, network, ledger.meter(pid), control_id, ack_router
            )
        control.replica_ids = list(replicas)
        network.register(control)
        for replica in replicas.values():
            network.register(replica)

        commands = commands_for_run(
            spec.target_height, spec.batch_size, spec.command_payload_bytes, seed=spec.seed
        )
        fill_txpools(replicas.values(), commands)
        control.start()
        for replica in replicas.values():
            replica.start()
        sim.run_until_idle(max_events=self.max_events)
        return self._collect(
            spec, config, sim, ledger, network, scheme, replicas, exclude_from_energy={control_id}
        )

    # ------------------------------------------------------------ collection
    def _collect(
        self,
        spec: DeploymentSpec,
        config: ProtocolConfig,
        sim: Simulator,
        ledger: ClusterEnergyLedger,
        network: SimulatedNetwork,
        scheme: SignatureScheme,
        replicas: Dict[int, object],
        exclude_from_energy: Optional[set[int]] = None,
    ) -> RunResult:
        faulty = set(spec.fault_plan.faulty) | set(exclude_from_energy or ())
        if spec.charge_sleep:
            for pid, meter in ledger.meters.items():
                if pid not in faulty:
                    meter.charge_sleep(sim.now, sim.now)
        leader = config.leader_of(1)
        energy = ledger.report(leader=leader, faulty=faulty)
        logs = {pid: replica.log for pid, replica in replicas.items()}
        checker = SafetyChecker(logs, faulty=spec.fault_plan.faulty)
        safety = checker.check()
        committed_heights = {pid: replica.committed_height for pid, replica in replicas.items()}
        correct_heights = [
            height for pid, height in committed_heights.items() if pid not in spec.fault_plan.faulty
        ]
        view_changes = max(
            (
                replica.stats.view_changes_completed
                for pid, replica in replicas.items()
                if pid not in spec.fault_plan.faulty
            ),
            default=0,
        )
        return RunResult(
            spec=spec,
            config=config,
            energy=energy,
            safety=safety,
            network=network.stats,
            sim_time=sim.now,
            committed_heights=committed_heights,
            min_committed_height=min(correct_heights, default=0),
            view_changes=view_changes,
            equivocations_detected=sum(
                replica.stats.equivocations_detected for replica in replicas.values()
            ),
            blames_sent=sum(replica.stats.blames_sent for replica in replicas.values()),
            sign_operations=scheme.total_sign_operations(),
            verify_operations=scheme.total_verify_operations(),
            replica_snapshots={
                pid: replica.describe() if hasattr(replica, "describe") else {}
                for pid, replica in replicas.items()
            },
        )


def run_protocol(spec: DeploymentSpec) -> RunResult:
    """Convenience one-shot runner."""
    return ProtocolRunner().run(spec)
