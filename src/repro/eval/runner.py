"""Experiment runner: build a deployment, run it, collect metrics.

The runner is the reproduction's equivalent of the paper's test-bed
harness: given a :class:`DeploymentSpec` it builds the topology, network,
key material and replicas, pre-loads the workload, runs the simulation to
quiescence, checks safety, and returns a :class:`RunResult` with the
energy, communication and protocol metrics every figure needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.adversary import FaultPlan, behaviour_class, replica_class_for
from repro.core.baselines.optsync import OptSyncReplica
from repro.core.baselines.sync_hotstuff import SyncHotStuffReplica
from repro.core.baselines.trusted_baseline import TrustedBaselineReplica, TrustedControlNode
from repro.core.client import AckRouter
from repro.core.config import ProtocolConfig
from repro.core.eesmr.replica import EesmrReplica
from repro.core.ledger import SafetyChecker, SafetyReport
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureScheme, make_scheme
from repro.energy.ledger import ClusterEnergyLedger, EnergyReport
from repro.energy.meter import EnergyCategory
from repro.net.hypergraph import Hypergraph
from repro.net.network import NetworkStats, SimulatedNetwork
from repro.net.topology import (
    fully_connected_topology,
    random_kcast_topology,
    ring_kcast_topology,
    star_topology,
    unicast_ring_topology,
)
from repro.radio.media import (
    MediumKCastAdapter,
    MediumUnicastAdapter,
    lte_medium,
    make_medium,
)
from repro.sim.rng import SeededRNG, derive_seed
from repro.sim.scheduler import Simulator
from repro.eval.workloads import client_for_run, commands_for_run, fill_txpools

#: Names accepted by DeploymentSpec.protocol.
PROTOCOLS = ("eesmr", "sync-hotstuff", "optsync", "trusted-baseline")

#: Names accepted by DeploymentSpec.medium.  ``"ble"`` is the paper's test
#: bed (reliable advertisement k-casts + GATT unicasts); the others price
#: every transmission with the corresponding Table 1 medium model.
MEDIA = ("ble", "wifi", "4g-lte")


@dataclass
class DeploymentSpec:
    """Everything needed to reproduce one protocol run."""

    protocol: str = "eesmr"
    n: int = 7
    f: int = 1
    k: int = 2
    topology: str = "ring-kcast"
    #: Outgoing k-casts per node for the ``random-kcast`` topology.
    edges_per_node: int = 1
    #: Seed for the ``random-kcast`` receiver sampling; defaults to a
    #: stream derived from ``seed`` so runs stay reproducible per spec.
    topology_seed: Optional[int] = None
    medium: str = "ble"
    hop_delay: float = 1.0
    delta: Optional[float] = None
    signature_scheme: str = "rsa-1024"
    batch_size: int = 1
    command_payload_bytes: int = 16
    target_height: int = 5
    block_interval: float = 0.0
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    #: Optional testkit fault schedule (``repro.testkit.faults.FaultSchedule``),
    #: duck-typed here to keep ``eval`` importable without the testkit.  When
    #: set it supersedes ``fault_plan``: per-node behaviours come from
    #: :meth:`FaultSchedule.replica_behaviour` and network-level faults are
    #: armed via :meth:`FaultSchedule.install`.
    fault_schedule: Optional[Any] = None
    seed: int = 0
    charge_sleep: bool = False
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; known: {PROTOCOLS}")
        if self.medium not in MEDIA:
            raise ValueError(f"unknown medium {self.medium!r}; known: {MEDIA}")
        if self.k < 1 or self.k > self.n - 1:
            raise ValueError(f"k must be in [1, n-1], got k={self.k}, n={self.n}")

    @property
    def byzantine_nodes(self) -> tuple[int, ...]:
        """Node ids under adversary control (schedule-aware)."""
        if self.fault_schedule is not None:
            return tuple(self.fault_schedule.byzantine_nodes())
        return self.fault_plan.faulty


@dataclass
class RunResult:
    """Metrics collected from one run."""

    spec: DeploymentSpec
    config: ProtocolConfig
    energy: EnergyReport
    safety: SafetyReport
    network: NetworkStats
    sim_time: float
    committed_heights: Dict[int, int]
    min_committed_height: int
    view_changes: int
    equivocations_detected: int
    blames_sent: int
    sign_operations: int
    verify_operations: int
    replica_snapshots: Dict[int, dict]
    #: Structured per-run trace (``repro.testkit.trace.RunTrace``) when the
    #: runner was built with a recorder; ``None`` otherwise.
    trace: Optional[Any] = None

    # ------------------------------------------------------------- derived
    @property
    def committed_blocks(self) -> int:
        """Consensus units completed by every correct node."""
        return self.min_committed_height

    @property
    def correct_energy_j(self) -> float:
        return self.energy.correct_total_joules

    @property
    def correct_energy_mj(self) -> float:
        return self.energy.correct_total_joules * 1000.0

    @property
    def energy_per_block_mj(self) -> float:
        """Total correct-node energy per committed consensus unit (mJ)."""
        blocks = max(1, self.committed_blocks)
        return self.correct_energy_mj / blocks

    @property
    def leader_energy_mj(self) -> float:
        return self.energy.leader_joules * 1000.0

    @property
    def leader_energy_per_block_mj(self) -> float:
        blocks = max(1, self.committed_blocks)
        return self.leader_energy_mj / blocks

    @property
    def replica_energy_per_block_mj(self) -> float:
        blocks = max(1, self.committed_blocks)
        return self.energy.mean_replica_joules * 1000.0 / blocks


class ProtocolRunner:
    """Builds and executes deployments described by :class:`DeploymentSpec`.

    Args:
        max_events: Safety valve against livelocked protocols.
        recorder: Optional ``repro.testkit.trace.TraceRecorder``; when given,
            the simulator's event trace is enabled and every run's
            :class:`RunResult` carries a structured ``trace``.
    """

    def __init__(self, max_events: int = 2_000_000, recorder: Optional[Any] = None) -> None:
        self.max_events = max_events
        self.recorder = recorder

    # --------------------------------------------------------------- radios
    def build_radios(self, spec: DeploymentSpec):
        """The (k-cast, unicast) radio pair for the spec's medium.

        ``None`` entries mean "use the network's default" — the calibrated
        BLE advertisement k-cast and GATT unicast of the paper's test bed.
        """
        if spec.medium == "ble":
            return None, None
        medium = make_medium(spec.medium)
        return MediumKCastAdapter(medium), MediumUnicastAdapter(medium)

    # ------------------------------------------------------------ topology
    def build_topology(self, spec: DeploymentSpec) -> Hypergraph:
        """The hypergraph for a spec (ring k-cast by default, as in the paper)."""
        if spec.topology == "ring-kcast":
            return ring_kcast_topology(spec.n, spec.k)
        if spec.topology == "fully-connected":
            return fully_connected_topology(spec.n)
        if spec.topology == "unicast-ring":
            return unicast_ring_topology(spec.n, spec.k)
        if spec.topology == "star":
            return star_topology(spec.n + 1, center=spec.n)
        if spec.topology == "random-kcast":
            topology_seed = (
                spec.topology_seed
                if spec.topology_seed is not None
                else derive_seed(spec.seed, "topology", spec.n, spec.k, spec.edges_per_node)
            )
            return random_kcast_topology(
                spec.n, spec.k, edges_per_node=spec.edges_per_node, rng=SeededRNG(topology_seed)
            )
        raise ValueError(f"unknown topology {spec.topology!r}")

    def compute_delta(self, spec: DeploymentSpec, topology: Hypergraph) -> float:
        """A Δ that upper-bounds flooded delivery plus a unicast response."""
        if spec.delta is not None:
            return spec.delta
        diameter = max(1, topology.diameter())
        return (diameter + 2) * spec.hop_delay

    # --------------------------------------------------------------- running
    def run(self, spec: DeploymentSpec) -> RunResult:
        """Execute one deployment to quiescence and collect its metrics."""
        if spec.protocol == "trusted-baseline":
            return self._run_trusted_baseline(spec)
        return self._run_replicated(spec)

    # ----------------------------------------------------- replicated runs
    def _run_replicated(self, spec: DeploymentSpec) -> RunResult:
        sim = Simulator()
        if self.recorder is not None:
            self.recorder.attach(sim)
        rng = SeededRNG(spec.seed)
        topology = self.build_topology(spec)
        delta = self.compute_delta(spec, topology)
        ledger = ClusterEnergyLedger(topology.nodes)
        kcast_radio, unicast_radio = self.build_radios(spec)
        network = SimulatedNetwork(
            sim,
            topology,
            ledger,
            rng=rng.child("network"),
            kcast_radio=kcast_radio,
            unicast_radio=unicast_radio,
            hop_delay=spec.hop_delay,
            jitter=spec.jitter,
        )
        keystore = KeyStore(seed=spec.seed)
        keystore.generate(topology.nodes)
        scheme = make_scheme(spec.signature_scheme, keystore=keystore)
        config = ProtocolConfig(
            n=spec.n,
            f=spec.f,
            delta=delta,
            signature_scheme=spec.signature_scheme,
            batch_size=spec.batch_size,
            command_payload_bytes=spec.command_payload_bytes,
            target_height=spec.target_height,
            block_interval=spec.block_interval,
        )
        client = client_for_run(spec.f, spec.command_payload_bytes, spec.seed)
        ack_router = AckRouter([client])

        replicas = self._build_replicas(sim, spec, config, scheme, network, ledger, ack_router)
        for replica in replicas.values():
            network.register(replica)
        if spec.fault_schedule is not None:
            # The schedule arms its own network-level faults (relay drops,
            # partitions, timed relay silence) with per-fault timing.
            spec.fault_schedule.install(sim, network, replicas)
        else:
            for pid in spec.fault_plan.faulty:
                network.set_relay_policy(pid, lambda _origin, _message: False)

        commands = commands_for_run(
            spec.target_height,
            spec.batch_size,
            spec.command_payload_bytes,
            seed=spec.seed,
        )
        for command in commands:
            client.submitted[command.command_id] = command
        fill_txpools(replicas.values(), commands)

        for replica in replicas.values():
            replica.start()
        sim.run_until_idle(max_events=self.max_events)

        return self._collect(spec, config, sim, ledger, network, scheme, replicas)

    def _build_replicas(
        self,
        sim: Simulator,
        spec: DeploymentSpec,
        config: ProtocolConfig,
        scheme: SignatureScheme,
        network: SimulatedNetwork,
        ledger: ClusterEnergyLedger,
        ack_router: AckRouter,
    ) -> Dict[int, object]:
        schedule = spec.fault_schedule
        replicas: Dict[int, object] = {}
        for pid in range(spec.n):
            meter = ledger.meter(pid)
            if spec.protocol == "eesmr":
                cls, kwargs = self._eesmr_class_for(spec, pid)
                replica = cls(sim, pid, config, scheme, network, meter, ack_router, **kwargs)
            else:
                base_cls = SyncHotStuffReplica if spec.protocol == "sync-hotstuff" else OptSyncReplica
                replica = base_cls(sim, pid, config, scheme, network, meter, ack_router)
                # Baseline faults are modelled as fail-stop at the trigger time.
                if schedule is not None:
                    failstop = schedule.failstop_time(pid)
                    if failstop is not None:
                        replica.after(failstop, replica.crash, label="crash")
                elif pid in spec.fault_plan.faulty:
                    replica.after(spec.fault_plan.crash_time, replica.crash, label="crash")
            replicas[pid] = replica
        return replicas

    def _eesmr_class_for(self, spec: DeploymentSpec, pid: int):
        """The (class, kwargs) for one EESMR node under the spec's faults."""
        if spec.fault_schedule is not None:
            behaviour = spec.fault_schedule.replica_behaviour(pid)
            if behaviour is None:
                return EesmrReplica, {}
            name, kwargs = behaviour
            return behaviour_class(name), dict(kwargs)
        return replica_class_for(spec.fault_plan, pid)

    # ----------------------------------------------- trusted baseline runs
    def _run_trusted_baseline(self, spec: DeploymentSpec) -> RunResult:
        sim = Simulator()
        if self.recorder is not None:
            self.recorder.attach(sim)
        rng = SeededRNG(spec.seed)
        control_id = spec.n
        topology = star_topology(spec.n + 1, center=control_id)
        ledger = ClusterEnergyLedger(topology.nodes)
        # The paper's trusted baseline talks to its control node over LTE;
        # "ble" (the default) keeps that, other media override the links.
        unicast_radio = (
            MediumUnicastAdapter(lte_medium())
            if spec.medium == "ble"
            else MediumUnicastAdapter(make_medium(spec.medium))
        )
        network = SimulatedNetwork(
            sim,
            topology,
            ledger,
            rng=rng.child("network"),
            unicast_radio=unicast_radio,
            hop_delay=spec.hop_delay,
            jitter=spec.jitter,
        )
        delta = spec.delta if spec.delta is not None else 3 * spec.hop_delay
        keystore = KeyStore(seed=spec.seed)
        keystore.generate(topology.nodes)
        scheme = make_scheme(spec.signature_scheme, keystore=keystore)
        config = ProtocolConfig(
            n=spec.n,
            f=spec.f,
            delta=delta,
            signature_scheme=spec.signature_scheme,
            batch_size=spec.batch_size,
            command_payload_bytes=spec.command_payload_bytes,
            target_height=spec.target_height,
            block_interval=spec.block_interval,
        )
        client = client_for_run(spec.f, spec.command_payload_bytes, spec.seed)
        ack_router = AckRouter([client])

        control = TrustedControlNode(
            sim, control_id, config, scheme, network, round_interval=max(spec.hop_delay, 0.5)
        )
        replicas: Dict[int, TrustedBaselineReplica] = {}
        for pid in range(spec.n):
            replicas[pid] = TrustedBaselineReplica(
                sim, pid, config, scheme, network, ledger.meter(pid), control_id, ack_router
            )
        control.replica_ids = list(replicas)
        network.register(control)
        for replica in replicas.values():
            network.register(replica)
        if spec.fault_schedule is not None:
            for pid, replica in replicas.items():
                failstop = spec.fault_schedule.failstop_time(pid)
                if failstop is not None:
                    replica.after(failstop, replica.crash, label="crash")
            spec.fault_schedule.install(sim, network, replicas)

        commands = commands_for_run(
            spec.target_height, spec.batch_size, spec.command_payload_bytes, seed=spec.seed
        )
        fill_txpools(replicas.values(), commands)
        control.start()
        for replica in replicas.values():
            replica.start()
        sim.run_until_idle(max_events=self.max_events)
        return self._collect(
            spec, config, sim, ledger, network, scheme, replicas, exclude_from_energy={control_id}
        )

    # ------------------------------------------------------------ collection
    def _collect(
        self,
        spec: DeploymentSpec,
        config: ProtocolConfig,
        sim: Simulator,
        ledger: ClusterEnergyLedger,
        network: SimulatedNetwork,
        scheme: SignatureScheme,
        replicas: Dict[int, object],
        exclude_from_energy: Optional[set[int]] = None,
    ) -> RunResult:
        byzantine = set(spec.byzantine_nodes)
        faulty = byzantine | set(exclude_from_energy or ())
        if spec.charge_sleep:
            for pid, meter in ledger.meters.items():
                if pid not in faulty:
                    meter.charge_sleep(sim.now, sim.now)
        leader = config.leader_of(1)
        energy = ledger.report(leader=leader, faulty=faulty)
        logs = {pid: replica.log for pid, replica in replicas.items()}
        checker = SafetyChecker(logs, faulty=byzantine)
        safety = checker.check()
        committed_heights = {pid: replica.committed_height for pid, replica in replicas.items()}
        correct_heights = [
            height for pid, height in committed_heights.items() if pid not in byzantine
        ]
        view_changes = max(
            (
                replica.stats.view_changes_completed
                for pid, replica in replicas.items()
                if pid not in byzantine
            ),
            default=0,
        )
        result = RunResult(
            spec=spec,
            config=config,
            energy=energy,
            safety=safety,
            network=network.stats,
            sim_time=sim.now,
            committed_heights=committed_heights,
            min_committed_height=min(correct_heights, default=0),
            view_changes=view_changes,
            equivocations_detected=sum(
                replica.stats.equivocations_detected for replica in replicas.values()
            ),
            blames_sent=sum(replica.stats.blames_sent for replica in replicas.values()),
            sign_operations=scheme.total_sign_operations(),
            verify_operations=scheme.total_verify_operations(),
            replica_snapshots={
                pid: replica.describe() if hasattr(replica, "describe") else {}
                for pid, replica in replicas.items()
            },
        )
        if self.recorder is not None:
            result.trace = self.recorder.capture(
                spec, config, sim, ledger, network, scheme, replicas, safety
            )
        return result


def run_protocol(spec: DeploymentSpec) -> RunResult:
    """Convenience one-shot runner."""
    return ProtocolRunner().run(spec)
