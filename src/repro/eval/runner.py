"""Experiment runner: build a deployment, run it, collect metrics.

The runner is the reproduction's equivalent of the paper's test-bed
harness.  Since the session redesign it is a thin shim: given a
:class:`DeploymentSpec` it builds a :class:`~repro.session.session.Session`
through the staged :class:`~repro.session.builder.SessionBuilder`
pipeline, drives it to quiescence, and returns the collected
:class:`RunResult` — byte-identical to the original one-shot runner
(pinned by the golden trace fingerprints).  Callers that need mid-run
control (stepping, pause/inspect/resume, observers, adaptive faults) use
the session API directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.adversary import FaultPlan
from repro.core.config import ProtocolConfig
from repro.core.ledger import SafetyReport
from repro.energy.ledger import EnergyReport
from repro.net.hypergraph import Hypergraph
from repro.net.network import NetworkStats

#: Names accepted by DeploymentSpec.protocol.
PROTOCOLS = ("eesmr", "sync-hotstuff", "optsync", "trusted-baseline")

#: Names accepted by DeploymentSpec.medium.  ``"ble"`` is the paper's test
#: bed (reliable advertisement k-casts + GATT unicasts); the others price
#: every transmission with the corresponding Table 1 medium model.
MEDIA = ("ble", "wifi", "4g-lte")

#: Names accepted by DeploymentSpec.topology.
TOPOLOGIES = ("ring-kcast", "fully-connected", "unicast-ring", "star", "random-kcast")


@dataclass
class DeploymentSpec:
    """Everything needed to reproduce one protocol run."""

    protocol: str = "eesmr"
    n: int = 7
    f: int = 1
    k: int = 2
    topology: str = "ring-kcast"
    #: Outgoing k-casts per node for the ``random-kcast`` topology.
    edges_per_node: int = 1
    #: Seed for the ``random-kcast`` receiver sampling; defaults to a
    #: stream derived from ``seed`` so runs stay reproducible per spec.
    topology_seed: Optional[int] = None
    medium: str = "ble"
    hop_delay: float = 1.0
    delta: Optional[float] = None
    signature_scheme: str = "rsa-1024"
    batch_size: int = 1
    command_payload_bytes: int = 16
    target_height: int = 5
    block_interval: float = 0.0
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    #: Optional testkit fault schedule (``repro.testkit.faults.FaultSchedule``),
    #: duck-typed here to keep ``eval`` importable without the testkit.  When
    #: set it supersedes ``fault_plan``: per-node behaviours come from
    #: :meth:`FaultSchedule.replica_behaviour` and network-level faults are
    #: armed via :meth:`FaultSchedule.install`.
    fault_schedule: Optional[Any] = None
    #: Optional workload engine (``repro.workload.WorkloadEngine``), duck-typed
    #: here so ``eval`` stays importable without the workload layer.  ``None``
    #: (the default) is the seed behaviour: the closed-loop preload that fills
    #: every txpool before the run starts.  Engines serialise through
    #: :meth:`WorkloadEngine.describe` / ``repro.workload.workload_from_dict``.
    workload: Optional[Any] = None
    #: Bound on each replica's pending-command pool (``None`` = unbounded,
    #: the seed behaviour).  Threaded into ``ProtocolConfig.txpool_limit``.
    txpool_limit: Optional[int] = None
    #: Optional wire impairment (``repro.net.impairment.ImpairmentSpec``),
    #: duck-typed to keep ``eval`` lean.  ``None`` (the default) is the seed
    #: behaviour: a perfectly reliable medium.  Serialises through
    #: :meth:`ImpairmentSpec.describe` / ``impairment_from_dict``.
    impairment: Optional[Any] = None
    seed: int = 0
    charge_sleep: bool = False
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; known: {PROTOCOLS}")
        if self.medium not in MEDIA:
            raise ValueError(f"unknown medium {self.medium!r}; known: {MEDIA}")
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}; known: {TOPOLOGIES}")
        if self.k < 1 or self.k > self.n - 1:
            raise ValueError(f"k must be in [1, n-1], got k={self.k}, n={self.n}")
        if self.topology == "random-kcast" and self.edges_per_node < 1:
            raise ValueError(
                f"random-kcast needs edges_per_node >= 1, got {self.edges_per_node}"
            )
        if self.txpool_limit is not None and self.txpool_limit < 1:
            raise ValueError(
                f"txpool_limit must be >= 1 or None, got {self.txpool_limit}"
            )

    @property
    def byzantine_nodes(self) -> tuple[int, ...]:
        """Node ids under adversary control (schedule-aware).

        Read *after* a run for adaptive schedules: their victim sets are
        decided mid-run and recorded back onto the schedule.
        """
        if self.fault_schedule is not None:
            return tuple(self.fault_schedule.byzantine_nodes())
        return self.fault_plan.faulty

    # ------------------------------------------------------------ declarative
    def to_dict(self) -> dict:
        """A JSON-safe description of this spec (round-trips via
        :meth:`from_dict`).  The one schema every surface serialises
        through: CLI ``--spec`` files, matrix cell dumps, benchmarks."""
        out = {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "k": self.k,
            "topology": self.topology,
            "edges_per_node": self.edges_per_node,
            "topology_seed": self.topology_seed,
            "medium": self.medium,
            "hop_delay": self.hop_delay,
            "delta": self.delta,
            "signature_scheme": self.signature_scheme,
            "batch_size": self.batch_size,
            "command_payload_bytes": self.command_payload_bytes,
            "target_height": self.target_height,
            "block_interval": self.block_interval,
            "seed": self.seed,
            "charge_sleep": self.charge_sleep,
            "jitter": self.jitter,
            "fault_plan": {
                "faulty": list(self.fault_plan.faulty),
                "behaviour": self.fault_plan.behaviour,
                "trigger_round": self.fault_plan.trigger_round,
                "crash_time": self.fault_plan.crash_time,
            },
            "fault_schedule": (
                self.fault_schedule.describe() if self.fault_schedule is not None else None
            ),
            "workload": self.workload.describe() if self.workload is not None else None,
            "txpool_limit": self.txpool_limit,
            "impairment": (
                self.impairment.describe() if self.impairment is not None else None
            ),
        }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentSpec":
        """Rebuild a spec from :meth:`to_dict` output (e.g. parsed JSON)."""
        data = dict(data)
        plan_data = data.pop("fault_plan", None)
        schedule_data = data.pop("fault_schedule", None)
        workload_data = data.pop("workload", None)
        impairment_data = data.pop("impairment", None)
        unknown = set(data) - _SPEC_FIELDS
        if unknown:
            raise ValueError(f"unknown DeploymentSpec fields {sorted(unknown)}")
        kwargs: Dict[str, Any] = dict(data)
        if plan_data is not None:
            # Omitted keys fall through to FaultPlan's own defaults — the
            # dataclass stays the single source of truth for them.
            plan_data = dict(plan_data)
            kwargs["fault_plan"] = FaultPlan(
                faulty=tuple(plan_data.pop("faulty", ())), **plan_data
            )
        if schedule_data is not None:
            # Lazy import: ``eval`` stays importable without the testkit.
            from repro.testkit.faults import schedule_from_dict

            kwargs["fault_schedule"] = schedule_from_dict(schedule_data)
        if workload_data is not None:
            # Lazy import: ``eval`` stays importable without the workload layer.
            from repro.workload import workload_from_dict

            kwargs["workload"] = workload_from_dict(workload_data)
        if impairment_data is not None:
            from repro.net.impairment import impairment_from_dict

            kwargs["impairment"] = impairment_from_dict(impairment_data)
        return cls(**kwargs)


#: Scalar DeploymentSpec field names accepted by :meth:`DeploymentSpec.from_dict`.
_SPEC_FIELDS = {name for name in DeploymentSpec.__dataclass_fields__} - {
    "fault_plan",
    "fault_schedule",
    "workload",
    "impairment",
}


@dataclass
class RunResult:
    """Metrics collected from one run."""

    spec: DeploymentSpec
    config: ProtocolConfig
    energy: EnergyReport
    safety: SafetyReport
    network: NetworkStats
    sim_time: float
    committed_heights: Dict[int, int]
    min_committed_height: int
    view_changes: int
    equivocations_detected: int
    blames_sent: int
    sign_operations: int
    verify_operations: int
    replica_snapshots: Dict[int, dict]
    #: Structured per-run trace (``repro.testkit.trace.RunTrace``) when the
    #: runner was built with a recorder; ``None`` otherwise.
    trace: Optional[Any] = None
    #: Commands dropped by bounded txpools (overflow verdicts), summed over
    #: all replicas.  Zero for unbounded (seed-behaviour) pools.
    commands_dropped: int = 0
    #: Duplicate submissions rejected by txpools, summed over all replicas.
    commands_duplicate: int = 0
    #: Largest per-replica pool occupancy observed during the run.
    txpool_high_watermark: int = 0
    #: SLO metrics summary (``repro.session.metrics.MetricsObserver``) when
    #: one was registered on the session; ``None`` otherwise.
    metrics: Optional[Any] = None
    #: Hop deliveries dropped by the wire impairment model (0 on a clean
    #: medium — the seed behaviour).
    deliveries_dropped: int = 0
    #: Retransmissions performed by the reliable-delivery sublayer.
    deliveries_retransmitted: int = 0
    #: Deliveries the reliable sublayer abandoned after exhausting retries.
    delivery_giveups: int = 0

    # ------------------------------------------------------------- derived
    @property
    def committed_blocks(self) -> int:
        """Consensus units completed by every correct node."""
        return self.min_committed_height

    @property
    def correct_energy_j(self) -> float:
        return self.energy.correct_total_joules

    @property
    def correct_energy_mj(self) -> float:
        return self.energy.correct_total_joules * 1000.0

    @property
    def energy_per_block_mj(self) -> float:
        """Total correct-node energy per committed consensus unit (mJ)."""
        blocks = max(1, self.committed_blocks)
        return self.correct_energy_mj / blocks

    @property
    def leader_energy_mj(self) -> float:
        return self.energy.leader_joules * 1000.0

    @property
    def leader_energy_per_block_mj(self) -> float:
        blocks = max(1, self.committed_blocks)
        return self.leader_energy_mj / blocks

    @property
    def replica_energy_per_block_mj(self) -> float:
        blocks = max(1, self.committed_blocks)
        return self.energy.mean_replica_joules * 1000.0 / blocks


class ProtocolRunner:
    """Builds and executes deployments described by :class:`DeploymentSpec`.

    A thin shim over the session API: every run is
    ``SessionBuilder(spec).build().run_to_quiescence().finish()``.

    Args:
        max_events: Safety valve against livelocked protocols.
        recorder: Optional ``repro.testkit.trace.TraceRecorder``; when given,
            the simulator's event trace is enabled and every run's
            :class:`RunResult` carries a structured ``trace``.
    """

    def __init__(self, max_events: int = 2_000_000, recorder: Optional[Any] = None) -> None:
        self.max_events = max_events
        self.recorder = recorder

    # --------------------------------------------------------------- radios
    def build_radios(self, spec: DeploymentSpec):
        """The (k-cast, unicast) radio pair for the spec's medium."""
        from repro.session.builder import build_radios

        return build_radios(spec)

    # ------------------------------------------------------------ topology
    def build_topology(self, spec: DeploymentSpec) -> Hypergraph:
        """The hypergraph for a spec (ring k-cast by default, as in the paper)."""
        from repro.session.builder import build_topology

        return build_topology(spec)

    def compute_delta(self, spec: DeploymentSpec, topology: Hypergraph) -> float:
        """A Δ that upper-bounds flooded delivery plus a unicast response."""
        from repro.session.builder import compute_delta

        return compute_delta(spec, topology)

    # --------------------------------------------------------------- running
    def session(self, spec: DeploymentSpec, **builder_kwargs):
        """An unstarted :class:`~repro.session.session.Session` for ``spec``."""
        from repro.session.builder import SessionBuilder

        builder_kwargs.setdefault("max_events", self.max_events)
        builder_kwargs.setdefault("recorder", self.recorder)
        return SessionBuilder(spec, **builder_kwargs).build()

    def run(self, spec: DeploymentSpec) -> RunResult:
        """Execute one deployment to quiescence and collect its metrics."""
        return self.session(spec).run_to_quiescence().finish()


def run_protocol(spec: DeploymentSpec) -> RunResult:
    """Convenience one-shot runner (a thin shim over a session)."""
    return ProtocolRunner().run(spec)
