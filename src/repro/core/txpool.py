"""The pending-command pool (``txpool`` in the paper's protocol description).

Every node keeps the commands it has heard from clients in a local pool;
the leader drains the pool to build proposals and every node removes a
command once a block containing it commits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.core.types import Command


class TxPool:
    """An ordered pool of pending client commands."""

    def __init__(self, max_size: Optional[int] = None) -> None:
        self._pending: "OrderedDict[str, Command]" = OrderedDict()
        self.max_size = max_size
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, command_id: str) -> bool:
        return command_id in self._pending

    def add(self, command: Command) -> bool:
        """Add a command; returns ``False`` when it was a duplicate or dropped."""
        if command.command_id in self._pending:
            return False
        if self.max_size is not None and len(self._pending) >= self.max_size:
            self.dropped += 1
            return False
        self._pending[command.command_id] = command
        return True

    def add_all(self, commands: Iterable[Command]) -> int:
        """Add many commands; returns how many were actually added."""
        return sum(1 for command in commands if self.add(command))

    def peek_batch(self, batch_size: int) -> List[Command]:
        """The next ``batch_size`` commands in arrival order (without removal).

        The leader proposes from the pool but does not remove commands until
        they commit — a command proposed in a block that is later abandoned
        by a view change must be re-proposable.
        """
        if batch_size < 0:
            raise ValueError("batch size cannot be negative")
        result = []
        for command in self._pending.values():
            if len(result) >= batch_size:
                break
            result.append(command)
        return result

    def remove(self, command_ids: Iterable[str]) -> int:
        """Remove committed commands; returns how many were present."""
        removed = 0
        for command_id in command_ids:
            if command_id in self._pending:
                del self._pending[command_id]
                removed += 1
        return removed

    def pending_ids(self) -> List[str]:
        """Ids of all pending commands (arrival order)."""
        return list(self._pending)

    def clear(self) -> None:
        """Drop every pending command."""
        self._pending.clear()
