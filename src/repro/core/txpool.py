"""The pending-command pool (``txpool`` in the paper's protocol description).

Every node keeps the commands it has heard from clients in a local pool;
the leader drains the pool to build proposals and every node removes a
command once a block containing it commits.

Admission is explicit: :meth:`TxPool.admit` returns a verdict —
:data:`ADMITTED`, :data:`DUPLICATE` or :data:`OVERFLOW` — and the pool
keeps per-verdict counters, so backpressure under open-loop load is
observable instead of silently folded into a boolean.  The first overflow
drop of a pool emits a single :class:`TxPoolOverflowWarning`; subsequent
drops are counted silently.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.core.types import Command

#: Admission verdicts returned by :meth:`TxPool.admit`.
ADMITTED = "admitted"
DUPLICATE = "duplicate"
OVERFLOW = "overflow"

ADMISSION_VERDICTS = (ADMITTED, DUPLICATE, OVERFLOW)


class TxPoolOverflowWarning(UserWarning):
    """Raised (once per pool) when a bounded pool drops its first command."""


class TxPool:
    """An ordered pool of pending client commands."""

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be at least 1 (or None for unbounded)")
        self._pending: "OrderedDict[str, Command]" = OrderedDict()
        self.max_size = max_size
        #: Commands rejected because the pool was full (overflow verdicts).
        self.dropped = 0
        #: Commands rejected because they were already pending.
        self.duplicates = 0
        #: Commands accepted into the pool.
        self.admitted = 0
        #: The largest number of simultaneously pending commands observed.
        self.high_watermark = 0
        self._overflow_warned = False

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, command_id: str) -> bool:
        return command_id in self._pending

    def admit(self, command: Command) -> str:
        """Admit a command, returning the admission verdict.

        ``ADMITTED`` — the command is now pending; ``DUPLICATE`` — it was
        already pending (not counted as a drop); ``OVERFLOW`` — the pool
        is at ``max_size`` and the command was dropped (counted, and
        warned about once per pool).
        """
        if command.command_id in self._pending:
            self.duplicates += 1
            return DUPLICATE
        if self.max_size is not None and len(self._pending) >= self.max_size:
            self.dropped += 1
            if not self._overflow_warned:
                self._overflow_warned = True
                warnings.warn(
                    f"txpool overflow: dropped command {command.command_id!r} "
                    f"(pool at max_size={self.max_size}); further drops are "
                    f"counted in TxPool.dropped without warning",
                    TxPoolOverflowWarning,
                    stacklevel=2,
                )
            return OVERFLOW
        self._pending[command.command_id] = command
        self.admitted += 1
        if len(self._pending) > self.high_watermark:
            self.high_watermark = len(self._pending)
        return ADMITTED

    def add(self, command: Command) -> bool:
        """Add a command; returns ``False`` when it was a duplicate or dropped."""
        return self.admit(command) == ADMITTED

    def add_all(self, commands: Iterable[Command]) -> int:
        """Add many commands; returns how many were actually added."""
        return sum(1 for command in commands if self.add(command))

    def peek_batch(self, batch_size: int) -> List[Command]:
        """The next ``batch_size`` commands in arrival order (without removal).

        The leader proposes from the pool but does not remove commands until
        they commit — a command proposed in a block that is later abandoned
        by a view change must be re-proposable.
        """
        if batch_size < 0:
            raise ValueError("batch size cannot be negative")
        result = []
        for command in self._pending.values():
            if len(result) >= batch_size:
                break
            result.append(command)
        return result

    def remove(self, command_ids: Iterable[str]) -> int:
        """Remove committed commands; returns how many were present."""
        removed = 0
        for command_id in command_ids:
            if command_id in self._pending:
                del self._pending[command_id]
                removed += 1
        return removed

    def pending_ids(self) -> List[str]:
        """Ids of all pending commands (arrival order)."""
        return list(self._pending)

    def admission_stats(self) -> dict:
        """Per-verdict counters plus occupancy (JSON-safe, stable keys)."""
        return {
            "admitted": self.admitted,
            "duplicates": self.duplicates,
            "dropped": self.dropped,
            "pending": len(self._pending),
            "high_watermark": self.high_watermark,
            "max_size": self.max_size,
        }

    def clear(self) -> None:
        """Drop every pending command."""
        self._pending.clear()
