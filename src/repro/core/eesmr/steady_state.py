"""EESMR steady-state sub-protocol (Algorithm 2, lines 203-215 and 278-280).

In the steady state the leader streams proposals — one block per round —
and every node:

* treats the flooded proposal it receives as its "vote in the head",
  updating its locked block ``B_lck`` without producing any signature;
* (re)broadcasts the proposal, which in this reproduction is realised by
  the network-layer flooding;
* starts the 4Δ commit timer ``T_commit(B)`` and commits ``B`` (and its
  ancestors) when the timer expires without an equivocation having been
  observed for that view.

The only signature in the whole steady state is the leader's signature on
the proposal, which is what gives EESMR its O(1) signing / O(n)
verification per block (Table 3) and its energy advantage over
certificate-based protocols.
"""

from __future__ import annotations

from typing import Dict

from repro.core.blocks import Block, make_block
from repro.core.messages import MessageType, ProtocolMessage
from repro.core.types import FIRST_STEADY_ROUND, Round, View


class SteadyStateMixin:
    """Steady-state behaviour of an EESMR replica.

    Mixed into :class:`repro.core.eesmr.replica.EesmrReplica`, which owns
    the state attributes referenced here.
    """

    # ------------------------------------------------------------- proposing
    def _schedule_propose(self, delay: float) -> None:
        """Schedule the leader's next proposal."""
        self.after(delay, self._propose_next, label="eesmr:propose")

    def _propose_next(self) -> None:
        """Leader: create and broadcast the proposal for the next round."""
        if self.crashed or self.in_view_change or not self.is_leader(self.v_cur):
            return
        if (
            self.leader_chain_tip.height >= self.config.target_height
            and not self.force_steady_proposal
        ):
            return
        self.force_steady_proposal = False
        round_number = self.next_propose_round
        block = self._build_proposal_block(round_number)
        message = self.sign_message(
            MessageType.PROPOSE, block, view=self.v_cur, round_number=round_number
        )
        self.store_block(block)
        self.broadcast(message)
        self.stats.proposals_made += 1
        self.leader_chain_tip = block
        self.next_propose_round += 1
        if self.leader_chain_tip.height < self.config.target_height:
            self._schedule_propose(self.config.block_interval)

    def _build_proposal_block(self, round_number: Round) -> Block:
        """The ``CreateProposal`` helper: extend the leader's chain tip with pooled commands."""
        return make_block(
            parent=self.leader_chain_tip,
            proposer=self.pid,
            view=self.v_cur,
            round_number=round_number,
            commands=self.next_batch(),
        )

    # -------------------------------------------------------------- handling
    def _on_propose(self, message: ProtocolMessage) -> None:
        """Handle a PROPOSE message (steady-state rounds >= 3, or view-change round 2)."""
        if message.view > self.v_cur:
            self._buffer_future(message)
            return
        if message.view < self.v_cur:
            return
        if message.sender != self.leader_of(message.view):
            return
        if not self.verify_signed_message(message):
            return
        if message.round == 2:
            self._on_round2_proposal(message)
            return
        if message.round < FIRST_STEADY_ROUND:
            return
        self._record_proposal(message)
        if self.in_view_change or self.r_cur < FIRST_STEADY_ROUND:
            # We are still completing the view change; keep the proposal so
            # it can be processed the moment we enter the steady state.
            self.buffered_proposals.setdefault(message.view, {})[message.round] = message
            return
        if message.round > self.r_cur:
            self.buffered_proposals.setdefault(message.view, {})[message.round] = message
            return
        if message.round == self.r_cur:
            self._process_steady_proposal(message)

    def _record_proposal(self, message: ProtocolMessage) -> None:
        """Track proposals per (view, round) and detect equivocation."""
        key = (message.view, message.round)
        per_round: Dict[str, ProtocolMessage] = self.proposals_seen.setdefault(key, {})
        per_round[message.data_digest] = message
        if len(per_round) >= 2:
            conflicting = list(per_round.values())[:2]
            self._handle_equivocation(message.view, conflicting[0], conflicting[1])

    def _process_steady_proposal(self, message: ProtocolMessage) -> None:
        """Vote in the head: lock, start the 4Δ commit timer, advance the round."""
        block = message.data
        if not isinstance(block, Block):
            return
        self.store_block(block)
        if not self.blocks.has_ancestry(block):
            # Chain synchronization would fetch the missing parents; absent
            # them we cannot validate the extension, so do not advance.
            return
        if not self.blocks.extends(block, self.b_lock):
            # The leader forked away from our lock; refuse to adopt it.  The
            # blame timer will eventually fire and trigger a view change.
            return
        self.b_lock = block
        self.stats.proposals_received += 1
        self.commit_timers.start(
            block.block_hash,
            4 * self.config.delta,
            lambda b=block: self._commit_on_timer(b),
        )
        self.r_cur = message.round + 1
        if block.height >= self.config.target_height:
            # All expected blocks have been proposed; a quiet leader is not a
            # faulty leader once the workload is exhausted.
            self.blame_timer.cancel()
        else:
            self.blame_timer.start(4 * self.config.delta)
        self._drain_buffered_proposals()

    def _drain_buffered_proposals(self) -> None:
        """Process any buffered proposal that has become current."""
        per_view = self.buffered_proposals.get(self.v_cur, {})
        while self.r_cur in per_view and not self.in_view_change:
            message = per_view.pop(self.r_cur)
            self._process_steady_proposal(message)

    # --------------------------------------------------------------- commit
    def _commit_on_timer(self, block: Block) -> None:
        """Commit rule: the 4Δ quiet period elapsed without equivocation."""
        if self.crashed:
            return
        self.commit_chain(block)

    # --------------------------------------------------------- equivocation
    def _handle_equivocation(
        self, view: View, first: ProtocolMessage, second: ProtocolMessage
    ) -> None:
        """Two conflicting proposals for the same round: blame with proof."""
        if view in self.equivocation_handled:
            return
        self.equivocation_handled.add(view)
        self.stats.equivocations_detected += 1
        self.commit_timers.cancel_all()
        if view == self.v_cur and view not in self.blamed_views:
            proof = (first, second)
            blame = self.sign_message(MessageType.BLAME, proof, view=view)
            self.blamed_views.add(view)
            self.blames.setdefault(view, {})[self.pid] = blame
            self.stats.blames_sent += 1
            self.broadcast(blame)
        # Equivocation-scenario speedup (Section 3.5): the proof itself
        # justifies quitting the view, so no f+1 blame certificate is built.
        if view == self.v_cur and view not in self.quit_views:
            self._quit_on_proof(view)
