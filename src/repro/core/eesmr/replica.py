"""The EESMR replica: state, dispatch and lifecycle.

This class glues together the steady-state and view-change mixins with the
shared :class:`repro.core.replica_base.BaseReplica` machinery.  One
instance of it is one node p_i of the system; it reacts to message
deliveries from the simulated network and to its own timers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.blocks import Block
from repro.core.config import ProtocolConfig
from repro.core.client import AckRouter
from repro.core.eesmr.steady_state import SteadyStateMixin
from repro.core.eesmr.view_change import ViewChangeMixin
from repro.core.messages import MessageType, ProtocolMessage, QuorumCertificate
from repro.core.replica_base import BaseReplica
from repro.core.types import NodeId, Round, View
from repro.crypto.signatures import SignatureScheme
from repro.energy.meter import EnergyMeter
from repro.net.network import SimulatedNetwork
from repro.sim.scheduler import Simulator


class EesmrReplica(SteadyStateMixin, ViewChangeMixin, BaseReplica):
    """A correct EESMR node (Algorithm 2)."""

    def __init__(
        self,
        sim: Simulator,
        pid: NodeId,
        config: ProtocolConfig,
        scheme: SignatureScheme,
        network: SimulatedNetwork,
        meter: EnergyMeter,
        ack_router: Optional[AckRouter] = None,
    ) -> None:
        super().__init__(sim, pid, config, scheme, network, meter, ack_router)

        # Steady-state bookkeeping.
        self.leader_chain_tip: Block = self.blocks.genesis
        self.next_propose_round: Round = 3
        self.force_steady_proposal = False
        self.proposals_seen: Dict[Tuple[View, Round], Dict[str, ProtocolMessage]] = {}
        self.buffered_proposals: Dict[View, Dict[Round, ProtocolMessage]] = {}
        self.commit_timers = self.make_timer_registry("t-commit")
        self.blame_timer = self.make_timer("t-blame", self._on_blame_timer)

        # View-change bookkeeping.
        self.in_view_change = False
        self.blames: Dict[View, Dict[NodeId, ProtocolMessage]] = {}
        self.blamed_views: set[View] = set()
        self.quit_views: set[View] = set()
        self.equivocation_handled: set[View] = set()
        self.certify_votes: Dict[View, Dict[NodeId, ProtocolMessage]] = {}
        self.own_commit_qc: Dict[View, QuorumCertificate] = {}
        self.best_commit_qc: Optional[QuorumCertificate] = None
        self.collected_commit_qcs: List[QuorumCertificate] = []
        self.nv_votes: Dict[View, Dict[NodeId, ProtocolMessage]] = {}
        self.nv_proposal_digest: Dict[View, str] = {}
        self.round2_sent: set[View] = set()
        self._future_messages: List[ProtocolMessage] = []

    # --------------------------------------------------------------- startup
    def start(self) -> None:
        """Arm the progress timer and, if leading view 1, start proposing."""
        self.blame_timer.start(4 * self.config.delta)
        if self.is_leader(self.v_cur):
            self._schedule_propose(0.0)

    # --------------------------------------------------------------- dispatch
    def on_message(self, sender: int, message: Any) -> None:
        """Route a delivered protocol message to its handler."""
        if not isinstance(message, ProtocolMessage):
            return
        handler = self._HANDLERS.get(message.msg_type)
        if handler is None:
            return
        handler(self, message)

    def _buffer_future(self, message: ProtocolMessage) -> None:
        """Hold a message addressed to a later view until we get there."""
        self._future_messages.append(message)

    def _replay_buffered_future(self) -> None:
        """Re-deliver buffered future-view messages that are now current."""
        ready = [m for m in self._future_messages if m.view <= self.v_cur]
        self._future_messages = [m for m in self._future_messages if m.view > self.v_cur]
        for message in ready:
            self.on_message(message.sender, message)

    # ---------------------------------------------------------------- status
    def describe(self) -> Dict[str, Any]:
        """A snapshot of the replica's protocol state (used in tests and examples)."""
        return {
            "pid": self.pid,
            "view": self.v_cur,
            "round": self.r_cur,
            "locked": self.b_lock.short_hash(),
            "locked_height": self.b_lock.height,
            "committed_height": self.committed_height,
            "in_view_change": self.in_view_change,
            "blocks_committed": self.stats.blocks_committed,
            "view_changes": self.stats.view_changes_completed,
        }


EesmrReplica._HANDLERS = {
    MessageType.PROPOSE: EesmrReplica._on_propose,
    MessageType.BLAME: EesmrReplica._on_blame,
    MessageType.BLAME_QC: EesmrReplica._on_blame_qc,
    MessageType.COMMIT_UPDATE: EesmrReplica._on_commit_update,
    MessageType.CERTIFY: EesmrReplica._on_certify,
    MessageType.COMMIT_QC: EesmrReplica._on_commit_qc,
    MessageType.NEW_VIEW_PROPOSAL: EesmrReplica._on_new_view_proposal,
    MessageType.VOTE: EesmrReplica._on_vote,
    # Catch-up state transfer (shared BaseReplica handlers): EESMR has no
    # steady-state certificates (commits are quiet-period timeouts), so
    # recovering nodes adopt on f+1 matching peer responses instead.
    MessageType.SYNC_REQUEST: EesmrReplica._on_sync_request,
    MessageType.SYNC_RESPONSE: EesmrReplica._on_sync_response,
}
