"""The EESMR protocol (the paper's primary contribution)."""

from repro.core.eesmr.replica import EesmrReplica
from repro.core.eesmr.steady_state import SteadyStateMixin
from repro.core.eesmr.view_change import ViewChangeMixin

__all__ = ["EesmrReplica", "SteadyStateMixin", "ViewChangeMixin"]
