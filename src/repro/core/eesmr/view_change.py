"""EESMR view-change sub-protocol (Algorithm 2, lines 216-277).

The view change is where EESMR pays for its cheap steady state: the
implicit "votes in the head" are converted into explicit certificates.
The phases are:

1. *Blame*: a node blames the leader when its progress timer expires
   (crash) or when it observes two conflicting proposals (equivocation,
   blame carries the proof).  f+1 blames form a blame certificate.
2. *Quit view*: on a valid blame certificate every node cancels its commit
   timers, waits Δ so all correct nodes quit, then broadcasts its highest
   committed block ``B_com`` and collects f+1 ``Certify`` votes on it — the
   explicit certificate for what was committed implicitly.
3. *Commit-QC exchange*: nodes broadcast their commit certificates and
   adopt any higher one that does not conflict with their lock.
4. *New view*: nodes send their best commit certificate to the new leader;
   the leader proposes a block extending the highest certified block
   (round 1), collects f+1 votes, and presents the vote certificate
   (round 2), after which the steady state resumes at round 3.

The timer values (Δ, 5Δ, Δ, 4Δ, 8Δ, 6Δ) follow the paper's analysis, which
bounds a full view change by 21Δ.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.blocks import Block, make_block
from repro.core.messages import (
    MessageType,
    ProtocolMessage,
    QuorumCertificate,
    make_qc,
    make_view_qc,
    message_data_digest,
)
from repro.core.types import View


class ViewChangeMixin:
    """View-change behaviour of an EESMR replica."""

    # ----------------------------------------------------------------- blame
    def _on_blame_timer(self) -> None:
        """T_blame expired: the leader made no progress — blame it.

        The timer is also armed during rounds 1 and 2 of a new view (with
        the longer 8Δ / 6Δ budgets), so a new leader that stalls is blamed
        and yet another view change begins — the liveness argument of
        Lemma B.3 depends on this.
        """
        if self.crashed:
            return
        view = self.v_cur
        if view in self.blamed_views:
            return
        blame = self.sign_message(MessageType.BLAME, None, view=view)
        self.blamed_views.add(view)
        self.blames.setdefault(view, {})[self.pid] = blame
        self.stats.blames_sent += 1
        self.broadcast(blame)
        self._check_blame_quorum(view)

    def _on_blame(self, message: ProtocolMessage) -> None:
        """Record another node's blame; validate an equivocation proof if present."""
        if message.view != self.v_cur:
            if message.view > self.v_cur:
                self._buffer_future(message)
            return
        if not self.verify_signed_message(message):
            return
        proof = message.data
        if self._is_equivocation_proof(proof):
            first, second = proof
            self._handle_equivocation(message.view, first, second)
        self.blames.setdefault(message.view, {})[message.sender] = message
        self._check_blame_quorum(message.view)

    def _is_equivocation_proof(self, proof) -> bool:
        """Validate a (proposal, proposal) equivocation proof, charging verification."""
        if not (isinstance(proof, tuple) and len(proof) == 2):
            return False
        first, second = proof
        if not (isinstance(first, ProtocolMessage) and isinstance(second, ProtocolMessage)):
            return False
        if first.msg_type != MessageType.PROPOSE or second.msg_type != MessageType.PROPOSE:
            return False
        if first.view != second.view or first.round != second.round:
            return False
        if first.data_digest == second.data_digest:
            return False
        leader = self.leader_of(first.view)
        if first.sender != leader or second.sender != leader:
            return False
        return self.verify_signed_message(first) and self.verify_signed_message(second)

    def _check_blame_quorum(self, view: View) -> None:
        """f+1 blames for the current view: form and broadcast the blame certificate."""
        blames = self.blames.get(view, {})
        if len(blames) < self.config.quorum:
            return
        if view != self.v_cur or view in self.quit_views:
            return
        blame_qc = make_view_qc(list(blames.values())[: self.config.quorum])
        message = self.sign_message(MessageType.BLAME_QC, blame_qc, view=view)
        self.broadcast(message)
        self._handle_blame_qc(view, blame_qc)

    def _on_blame_qc(self, message: ProtocolMessage) -> None:
        """A blame certificate from another node: verify and quit the view."""
        if message.view != self.v_cur:
            if message.view > self.v_cur:
                self._buffer_future(message)
            return
        if not self.verify_signed_message(message):
            return
        qc = message.data
        if not isinstance(qc, QuorumCertificate) or qc.cert_type != MessageType.BLAME:
            return
        if not self.verify_view_quorum_certificate(qc):
            return
        self._handle_blame_qc(message.view, qc)

    def _handle_blame_qc(self, view: View, blame_qc: QuorumCertificate) -> None:
        """Quit the view after Δ (lines 231-234)."""
        if view != self.v_cur or view in self.quit_views:
            return
        self.quit_views.add(view)
        self.in_view_change = True
        self.commit_timers.cancel_all()
        self.blame_timer.cancel()
        self.after(self.config.delta, lambda: self._quit_view(view), label="eesmr:quit-view")

    def _quit_on_proof(self, view: View) -> None:
        """Equivocation speedup: quit on a valid proof without a blame certificate.

        Section 3.5 ("Equivocation scenario speedups"): since the two
        conflicting signed proposals are themselves transferable evidence,
        every correct node that sees them can quit the view directly, saving
        the blame-certificate construction and its verification.
        """
        if view != self.v_cur or view in self.quit_views:
            return
        self.quit_views.add(view)
        self.in_view_change = True
        self.commit_timers.cancel_all()
        self.blame_timer.cancel()
        self.after(self.config.delta, lambda: self._quit_view(view), label="eesmr:quit-view")

    # ------------------------------------------------------------- quit view
    def _quit_view(self, view: View) -> None:
        """Broadcast B_com and start collecting explicit certificates (lines 235-241)."""
        if self.v_cur != view:
            return
        commit_update = self.sign_message(MessageType.COMMIT_UPDATE, self.b_com, view=view)
        self.broadcast(commit_update)
        self.after(
            5 * self.config.delta,
            lambda: self._finish_quit_view(view),
            label="eesmr:finish-quit",
        )

    def _on_commit_update(self, message: ProtocolMessage) -> None:
        """Vote (Certify) for another node's B_com when it does not conflict with our lock."""
        if message.view != self.v_cur:
            return
        if not self.verify_signed_message(message):
            return
        block = message.data
        if not isinstance(block, Block):
            return
        self.store_block(block)
        if not self.blocks.has_ancestry(block):
            return
        if self.blocks.conflicts(block, self.b_lock):
            return
        certify = self.sign_message(MessageType.CERTIFY, block.block_hash, view=message.view)
        self.stats.votes_sent += 1
        self.send(message.sender, certify)

    def _on_certify(self, message: ProtocolMessage) -> None:
        """Collect f+1 Certify votes on our own B_com into a commit certificate."""
        if message.view != self.v_cur:
            return
        if not self.verify_signed_message(message):
            return
        if message.data != self.b_com.block_hash:
            return
        votes = self.certify_votes.setdefault(message.view, {})
        votes[message.sender] = message
        if len(votes) < self.config.quorum:
            return
        if message.view in self.own_commit_qc:
            return
        qc = make_qc(list(votes.values())[: self.config.quorum], block=self.b_com)
        self.own_commit_qc[message.view] = qc
        self.stats.certificates_formed += 1
        self._consider_commit_qc(qc)

    def _consider_commit_qc(self, qc: QuorumCertificate) -> None:
        """Adopt a commit certificate when it is higher and does not conflict with our lock."""
        block = qc.block
        if block is None:
            return
        self.store_block(block)
        if not self.blocks.has_ancestry(block):
            return
        if self.blocks.conflicts(block, self.b_lock):
            return
        current = self.best_commit_qc
        if current is None or current.block is None or block.height > current.block.height:
            self.best_commit_qc = qc

    def _finish_quit_view(self, view: View) -> None:
        """5Δ after quitting: broadcast the best commit certificate, wait Δ, start the new view."""
        if self.v_cur != view:
            return
        if self.best_commit_qc is None:
            self.best_commit_qc = self.own_commit_qc.get(view)
        if self.best_commit_qc is not None:
            message = self.sign_message(MessageType.COMMIT_QC, self.best_commit_qc, view=view)
            self.broadcast(message)
        self.after(
            self.config.delta,
            lambda: self._start_new_view(view),
            label="eesmr:start-new-view",
        )

    def _on_commit_qc(self, message: ProtocolMessage) -> None:
        """A commit certificate from another node (broadcast or sent to the new leader)."""
        if not self.verify_signed_message(message):
            return
        qc = message.data
        if not isinstance(qc, QuorumCertificate) or qc.cert_type != MessageType.CERTIFY:
            return
        if not self.verify_quorum_certificate(qc):
            return
        self.collected_commit_qcs.append(qc)
        self._consider_commit_qc(qc)

    # -------------------------------------------------------------- new view
    def _start_new_view(self, old_view: View) -> None:
        """Enter view old_view + 1 (procedure NewView, lines 251-266)."""
        if self.v_cur != old_view:
            return
        self.v_cur = old_view + 1
        self.r_cur = 1
        self.stats.view_changes_completed += 1
        if self.hooks is not None:
            self.hooks.view_change(self.pid, self.v_cur, self.sim.now)
        new_leader = self.leader_of(self.v_cur)
        if self.best_commit_qc is not None:
            status = self.sign_message(MessageType.COMMIT_QC, self.best_commit_qc, view=self.v_cur)
            self.send(new_leader, status)
        self.blame_timer._callback = self._on_blame_timer
        self.blame_timer.start(8 * self.config.delta)
        if new_leader == self.pid:
            self.after(
                4 * self.config.delta,
                lambda: self._propose_new_view(self.v_cur),
                label="eesmr:new-view-proposal",
            )
        self._replay_buffered_future()

    def _highest_certified(self) -> tuple[Optional[Block], List[QuorumCertificate]]:
        """The highest certified block this node knows of, plus the status set."""
        candidates: List[QuorumCertificate] = list(self.collected_commit_qcs)
        for qc in self.own_commit_qc.values():
            candidates.append(qc)
        if self.best_commit_qc is not None:
            candidates.append(self.best_commit_qc)
        best_block: Optional[Block] = None
        for qc in candidates:
            if qc.block is None or not self.blocks.has_ancestry(qc.block):
                continue
            if best_block is None or qc.block.height > best_block.height:
                best_block = qc.block
        status = [qc for qc in candidates if qc.block is not None][: self.config.quorum]
        return best_block, status

    def _propose_new_view(self, view: View) -> None:
        """New leader: propose the round-1 block extending the highest certified block."""
        if self.crashed or self.v_cur != view or not self.is_leader(view):
            return
        base, status = self._highest_certified()
        if base is None:
            base = self.b_com
        new_block = make_block(
            parent=base,
            proposer=self.pid,
            view=view,
            round_number=1,
            commands=[],
        )
        self.store_block(new_block)
        payload = {"block": new_block, "status": status}
        message = self.sign_message(
            MessageType.NEW_VIEW_PROPOSAL, payload, view=view, round_number=1
        )
        self.nv_proposal_digest[view] = message_data_digest(payload)
        self.leader_chain_tip = new_block
        self.stats.proposals_made += 1
        self.broadcast(message)

    def _on_new_view_proposal(self, message: ProtocolMessage) -> None:
        """Round 1 of the new view: vote for the leader's proposal when it is safe."""
        if message.view != self.v_cur:
            if message.view > self.v_cur:
                self._buffer_future(message)
            return
        if self.r_cur != 1:
            return
        if message.sender != self.leader_of(message.view):
            return
        if not self.verify_signed_message(message):
            return
        payload = message.data
        if not isinstance(payload, dict):
            return
        block = payload.get("block")
        status = payload.get("status") or []
        if not isinstance(block, Block):
            return
        highest: Optional[Block] = None
        for qc in status:
            if not isinstance(qc, QuorumCertificate) or qc.block is None:
                continue
            if not self.verify_quorum_certificate(qc):
                continue
            self.store_block(qc.block)
            if highest is None or qc.block.height > highest.height:
                highest = qc.block
        if highest is None:
            highest = self.blocks.genesis
        self.store_block(block)
        if not self.blocks.has_ancestry(block):
            return
        if not self.blocks.extends(block, highest):
            return
        # LockCompare: the proposal belongs to a later view, so adopt it.
        self.b_lock = block
        digest = message_data_digest(payload)
        vote = self.sign_message(MessageType.VOTE, digest, view=message.view, round_number=1)
        self.stats.votes_sent += 1
        self.broadcast(vote)
        self.blame_timer.start(6 * self.config.delta)
        self.r_cur = 2

    def _on_vote(self, message: ProtocolMessage) -> None:
        """New leader: collect f+1 round-1 votes and issue the round-2 certificate."""
        if message.view != self.v_cur or not self.is_leader(message.view):
            return
        if not self.verify_signed_message(message):
            return
        expected = self.nv_proposal_digest.get(message.view)
        if expected is None or message.data != expected:
            return
        votes = self.nv_votes.setdefault(message.view, {})
        votes[message.sender] = message
        if len(votes) < self.config.quorum:
            return
        if message.view in self.round2_sent:
            return
        self.round2_sent.add(message.view)
        vote_qc = make_qc(list(votes.values())[: self.config.quorum])
        payload = {"qc": vote_qc, "block_hash": self.leader_chain_tip.block_hash}
        round2 = self.sign_message(MessageType.PROPOSE, payload, view=message.view, round_number=2)
        self.broadcast(round2)

    def _on_round2_proposal(self, message: ProtocolMessage) -> None:
        """Round 2 of the new view: a valid vote certificate returns us to the steady state."""
        if message.view != self.v_cur or self.r_cur not in (1, 2):
            return
        payload = message.data
        if not isinstance(payload, dict):
            return
        qc = payload.get("qc")
        if not isinstance(qc, QuorumCertificate) or qc.cert_type != MessageType.VOTE:
            return
        if not self.verify_quorum_certificate(qc):
            return
        self._enter_steady_state(message.view)

    def _enter_steady_state(self, view: View) -> None:
        """Transition to rounds >= 3 of the (new) view."""
        if self.v_cur != view:
            return
        self.r_cur = 3
        self.in_view_change = False
        if self.b_lock.height >= self.config.target_height:
            self.blame_timer.cancel()
        else:
            self.blame_timer.start(4 * self.config.delta)
        if self.is_leader(view):
            self.next_propose_round = 3
            # The round-1 block only commits as an ancestor of a steady-state
            # block, so a new leader always anchors at least one steady
            # proposal even when the workload target was already reached.
            self.force_steady_proposal = True
            self._schedule_propose(self.config.block_interval)
        self._drain_buffered_proposals()
