"""Shared replica machinery for all protocol implementations.

:class:`BaseReplica` wires a protocol state machine to the substrates:
the simulated network (for broadcast/unicast), the energy meter (for
radio, signing, verification and hashing charges), the key store and
signature scheme (for authentication), the block store, the committed log
and the transaction pool.  Protocol implementations (EESMR, Sync HotStuff,
OptSync, the trusted baseline) subclass it and implement message handling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.blocks import Block, BlockStore, GENESIS
from repro.core.client import AckRouter
from repro.core.config import ProtocolConfig, RunStats
from repro.core.ledger import CommittedLog
from repro.core.messages import (
    MessageType,
    ProtocolMessage,
    QuorumCertificate,
    make_message,
    verify_message,
    verify_qc,
    verify_view_qc,
)
from repro.core.txpool import ADMITTED, TxPool
from repro.core.types import Command, NodeId, Round, View
from repro.crypto.hashing import HashFunction
from repro.crypto.signatures import SignatureScheme
from repro.energy.meter import EnergyMeter
from repro.net.network import SimulatedNetwork
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


class BaseReplica(Process):
    """Common state and helpers for protocol replicas."""

    #: Whether adopting a synced suffix requires a verified certificate
    #: over its tip.  Protocols with explicit certificates (Sync HotStuff,
    #: OptSync) set this — an uncertified suffix is never committed.
    #: Certificate-free protocols (EESMR commits by quiet period, the
    #: trusted baseline by control-node signature) instead require
    #: matching responses from f+1 distinct peers, at least one of which
    #: is correct.
    sync_requires_certificate = False
    #: Whether this replica attaches its highest certificate when serving
    #: sync responses (the planted recovery mutant flips this off).
    sync_serve_certificates = True
    #: Upper bound on blocks per sync response.
    sync_max_batch = 64

    def __init__(
        self,
        sim: Simulator,
        pid: NodeId,
        config: ProtocolConfig,
        scheme: SignatureScheme,
        network: SimulatedNetwork,
        meter: EnergyMeter,
        ack_router: Optional[AckRouter] = None,
    ) -> None:
        super().__init__(sim, pid)
        self.config = config
        self.scheme = scheme
        self.network = network
        self.meter = meter
        self.ack_router = ack_router
        self.hash_fn = HashFunction()

        self.blocks = BlockStore()
        self.log = CommittedLog(pid, self.blocks)
        self.txpool = TxPool(max_size=config.txpool_limit)
        self.stats = RunStats()

        self.v_cur: View = 1
        self.r_cur: Round = 3
        self.b_lock: Block = GENESIS
        self.b_com: Block = GENESIS

        #: Optional session observer bus (``repro.session.observers``).
        #: When set, the replica reports block commits and completed view
        #: changes through it; ``None`` keeps the hot path hook-free.
        self.hooks: Optional[Any] = None

        #: Certificate-free sync adoption state: (height, tip hash) ->
        #: distinct responders vouching for that tip (see
        #: :meth:`_on_sync_response`).
        self._sync_confirmations: Dict[Tuple[int, str], Set[int]] = {}

    # --------------------------------------------------------------- leader
    def leader_of(self, view: View) -> NodeId:
        """The leader of ``view`` according to the configured schedule."""
        return self.config.leader_of(view)

    def is_leader(self, view: Optional[View] = None) -> bool:
        """Whether this replica leads the given (default: current) view."""
        return self.leader_of(view if view is not None else self.v_cur) == self.pid

    # ------------------------------------------------------------ messaging
    def sign_message(
        self,
        msg_type: MessageType,
        data: Any,
        view: Optional[View] = None,
        round_number: Round = 0,
    ) -> ProtocolMessage:
        """Create a signed protocol message and charge signing energy.

        The ``Msg`` helper signs twice (viewSig and dataSig); signing energy
        is charged per cryptographic operation, so two charges per message.
        """
        message = make_message(
            self.scheme,
            self.pid,
            msg_type,
            view if view is not None else self.v_cur,
            data,
            round_number=round_number,
        )
        if self.config.charge_crypto_energy:
            self.meter.charge_sign(2 * self.scheme.sign_energy_j, self.sim.now, msg_type.value)
        return message

    def verify_signed_message(self, message: ProtocolMessage) -> bool:
        """Verify a message's signatures and charge verification energy.

        A replica never re-verifies its own signatures (it produced them),
        so self-addressed deliveries are free — this keeps the leader's
        steady-state verification count at zero, as in the paper's model.
        """
        if message.sender == self.pid:
            return True
        if self.config.charge_crypto_energy:
            self.meter.charge_verify(
                2 * self.scheme.verify_energy_j, self.sim.now, message.msg_type.value
            )
        return verify_message(self.scheme, self.pid, message)

    def verify_quorum_certificate(self, qc: QuorumCertificate) -> bool:
        """Verify a QC (f+1 signatures) and charge per-signature verification energy."""
        if self.config.charge_crypto_energy:
            self.meter.charge_verify(
                len(qc.signatures) * self.scheme.verify_energy_j,
                self.sim.now,
                f"qc:{qc.cert_type.value}",
            )
        return verify_qc(self.scheme, self.pid, qc, self.config.quorum)

    def verify_view_quorum_certificate(self, qc: QuorumCertificate) -> bool:
        """Verify a view-signature QC (e.g. a blame certificate) with energy accounting."""
        if self.config.charge_crypto_energy:
            self.meter.charge_verify(
                len(qc.signatures) * self.scheme.verify_energy_j,
                self.sim.now,
                f"viewqc:{qc.cert_type.value}",
            )
        return verify_view_qc(self.scheme, self.pid, qc, self.config.quorum)

    def charge_block_hash(self, block: Block) -> None:
        """Charge the energy of hashing a block (chaining / digest checks)."""
        if self.config.charge_crypto_energy:
            self.meter.charge_hash(
                self.hash_fn.energy_for_size(block.wire_size_bytes),
                self.sim.now,
                "block-hash",
            )

    def broadcast(self, message: ProtocolMessage) -> None:
        """Flood a message to all nodes via the simulated network."""
        self.network.broadcast(self.pid, message)

    def send(self, destination: NodeId, message: ProtocolMessage) -> None:
        """Point-to-point send."""
        self.network.send(self.pid, destination, message)

    # ---------------------------------------------------------------- blocks
    def next_batch(self) -> List[Command]:
        """The commands the leader would put in the next block."""
        return self.txpool.peek_batch(self.config.batch_size)

    def store_block(self, block: Block) -> None:
        """Record a block (and charge the hash-check energy once)."""
        if self.blocks.add_if_absent(block):
            self.charge_block_hash(block)

    def commit_chain(self, block: Block) -> List[Block]:
        """Commit ``block`` and its ancestors; update b_com, txpool and acks."""
        if not self.blocks.has_ancestry(block):
            # Chain synchronization failed: refuse to commit a dangling block.
            return []
        newly_committed = self.log.commit(block, self.sim.now, self.v_cur)
        if block.height > self.b_com.height:
            self.b_com = block
        for committed in newly_committed:
            self.stats.blocks_committed += 1
            self.txpool.remove(committed.batch.command_ids)
            if self.ack_router is not None:
                for command in committed.batch.commands:
                    self.ack_router.route(
                        self.pid, command, committed.height, committed.block_hash
                    )
        if self.hooks is not None:
            for committed in newly_committed:
                self.hooks.block_commit(self.pid, committed, self.v_cur, self.sim.now)
        return newly_committed

    # ------------------------------------------------- catch-up state transfer
    # The repro.recovery subsystem drives this protocol: a
    # RecoveryController makes a healed/rebooted node call
    # :meth:`request_sync`; live peers answer from their committed log via
    # :meth:`_on_sync_request`; the recovering node adopts (in
    # :meth:`_on_sync_response`) only suffixes that verifiably extend its
    # own committed chain.  All messages ride the normal unicast path, so
    # radio and crypto energy accounting stays honest.

    def restart(self) -> None:
        """Power back on after a :class:`CrashRecoverWindow` (state intact).

        The node rejoins passively: dead protocol timers are not re-armed;
        the recovery controller closes the height gap via catch-up sync,
        and the replica answers any new protocol traffic normally.
        """
        self.recover()

    def request_sync(self, peer: NodeId) -> None:
        """Solicit missing blocks above our committed height from ``peer``."""
        message = self.sign_message(
            MessageType.SYNC_REQUEST, {"height": self.committed_height}
        )
        self.send(peer, message)

    def _sync_tip_certificate(self, tip: Block) -> Optional[QuorumCertificate]:
        """The certificate this replica can attach for a served tip, if any."""
        return None

    def _on_sync_request(self, message: ProtocolMessage) -> None:
        if not self.verify_signed_message(message):
            return
        data = message.data
        theirs = data.get("height") if isinstance(data, dict) else None
        mine = self.committed_height
        if not isinstance(theirs, int) or isinstance(theirs, bool) or theirs >= mine:
            return
        base = max(theirs, 0)
        top = min(mine, base + self.sync_max_batch)
        suffix = []
        for height in range(base + 1, top + 1):
            block = self.log.block_at(height)
            if block is None:
                return
            suffix.append(block)
        if not suffix:
            return
        cert = None
        if self.sync_serve_certificates:
            cert = self._sync_tip_certificate(suffix[-1])
        reply = self.sign_message(
            MessageType.SYNC_RESPONSE,
            {"blocks": tuple(suffix), "cert": cert, "height": mine},
        )
        self.send(message.sender, reply)

    def _on_sync_response(self, message: ProtocolMessage) -> None:
        if not self.verify_signed_message(message):
            return
        data = message.data
        if not isinstance(data, dict):
            return
        blocks = data.get("blocks") or ()
        if not blocks or not all(isinstance(b, Block) for b in blocks):
            return
        for parent, child in zip(blocks, blocks[1:]):
            if child.parent_hash != parent.block_hash or child.height != parent.height + 1:
                return
        tip = blocks[-1]
        if tip.height <= self.committed_height:
            return
        for block in blocks:
            self.store_block(block)
        # Refuse forked or dangling suffixes outright: the chain must run
        # through our own committed tip, or adopting it would conflict
        # with what we already executed (the controller rotates peers on
        # such failed attempts instead).
        if not self.blocks.has_ancestry(tip) or not self._sync_extends_commit(tip):
            return
        cert = data.get("cert")
        if (
            isinstance(cert, QuorumCertificate)
            and cert.block is not None
            and cert.block.block_hash == tip.block_hash
        ):
            if self.verify_quorum_certificate(cert):
                self.commit_chain(tip)
            return
        if self.sync_requires_certificate:
            return
        key = (tip.height, tip.block_hash)
        vouchers = self._sync_confirmations.setdefault(key, set())
        vouchers.add(message.sender)
        if len(vouchers) >= self.config.f + 1:
            self.commit_chain(tip)

    def _sync_extends_commit(self, tip: Block) -> bool:
        """Whether ``tip``'s ancestry runs through our committed tip."""
        block = tip
        while block.height > self.b_com.height:
            parent = self.blocks.get(block.parent_hash)
            if parent is None:
                return False
            block = parent
        return block.block_hash == self.b_com.block_hash

    # ---------------------------------------------------------------- client
    def submit_commands(self, commands: Iterable[Command]) -> int:
        """Inject client commands through pool admission (no radio energy).

        Returns how many commands were admitted; duplicates and overflow
        drops are counted on the pool (see
        :meth:`repro.core.txpool.TxPool.admission_stats`).
        """
        admitted = 0
        for command in commands:
            if self.txpool.admit(command) == ADMITTED:
                admitted += 1
        return admitted

    # ---------------------------------------------------------------- hooks
    def on_message(self, sender: int, message: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def committed_height(self) -> int:
        """Height of the highest committed block."""
        return self.log.highest_height
