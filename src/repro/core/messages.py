"""Protocol messages and quorum certificates (Algorithm 1 of the paper).

Every protocol message carries its type, the view it belongs to, a payload,
and two signatures by the sender: ``view_sig`` over (type, view) and
``data_sig`` over (data, view), mirroring the ``Msg`` helper of
Algorithm 1.  ``n/2 + 1`` (= f + 1) matching signed messages of the same
type and view combine into a :class:`QuorumCertificate` via :func:`make_qc`.

Wire sizes are tracked explicitly because the energy model charges radio
energy per byte: a message's size is its header, its payload and its
signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property
from typing import Any, Optional, Tuple

from repro.core.blocks import Block
from repro.core.types import NodeId, Round, View
from repro.crypto.hashing import is_deeply_immutable, sha256_hex
from repro.crypto.signatures import Signature, SignatureScheme

#: Fixed per-message header bytes (type, view, round, sender).
MESSAGE_HEADER_BYTES = 16

#: Flyweight switch: when ``False`` the per-instance digest / wire-size
#: memos below recompute on every access (the ``repro.perf`` legacy mode
#: uses this to measure the seed's per-hop serialization cost).
_FLYWEIGHT_ENABLED = True


def set_flyweight_enabled(enabled: bool) -> None:
    """Toggle per-message memoization (perf harness / tests only)."""
    global _FLYWEIGHT_ENABLED
    _FLYWEIGHT_ENABLED = enabled


def flyweight_enabled() -> bool:
    """Whether per-message memoization is currently on."""
    return _FLYWEIGHT_ENABLED


class _frozen_memo:
    """A ``cached_property`` for frozen messages that honours the flyweight switch.

    Safe only on immutable (frozen dataclass) owners: the memoized value is
    a pure function of construction-time fields.
    """

    def __init__(self, func):
        self._func = func
        self._slot = f"_memo_{func.__name__}"
        self.__doc__ = func.__doc__

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        if not _FLYWEIGHT_ENABLED:
            return self._func(obj)
        d = obj.__dict__
        if self._slot not in d:
            d[self._slot] = self._func(obj)  # frozen dataclasses allow direct __dict__ writes
        return d[self._slot]


class MessageType(str, Enum):
    """All message types used by EESMR and the baseline protocols."""

    # EESMR steady state.
    PROPOSE = "propose"
    # EESMR view change.
    BLAME = "blame"
    BLAME_QC = "blame_qc"
    COMMIT_UPDATE = "commit_update"
    CERTIFY = "certify"
    COMMIT_QC = "commit_qc"
    NEW_VIEW_PROPOSAL = "new_view_proposal"
    VOTE = "vote"
    # Sync HotStuff / OptSync specific.
    SHS_PROPOSE = "shs_propose"
    SHS_VOTE = "shs_vote"
    SHS_STATUS = "shs_status"
    SHS_NEW_VIEW = "shs_new_view"
    # Trusted baseline.
    TB_REQUEST = "tb_request"
    TB_ORDER = "tb_order"
    # Catch-up state transfer (all protocol families, repro.recovery).
    SYNC_REQUEST = "sync_request"
    SYNC_RESPONSE = "sync_response"


def payload_wire_size(payload: Any) -> int:
    """Estimate the wire size of a message payload in bytes."""
    if payload is None:
        return 0
    if isinstance(payload, Block):
        return payload.wire_size_bytes
    if isinstance(payload, QuorumCertificate):
        return payload.wire_size_bytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (list, tuple)):
        return sum(payload_wire_size(item) for item in payload)
    if isinstance(payload, dict):
        return sum(payload_wire_size(v) + 8 for v in payload.values())
    size = getattr(payload, "wire_size_bytes", None)
    if size is not None:
        return int(size)
    return 32


@dataclass(frozen=True)
class ProtocolMessage:
    """A signed protocol message.

    Attributes:
        msg_type: The message type (Algorithm 1's ``m.type``).
        view: The view the message belongs to (``m.view``).
        round: The round the message refers to (0 when not applicable).
        sender: Node id of the signer.
        data: Arbitrary payload (block, block hash, QC, proof, ...).
        view_sig: Signature over (type, view) — ``m.viewSig``.
        data_sig: Signature over (data digest, view) — ``m.dataSig``.
    """

    msg_type: MessageType
    view: View
    round: Round
    sender: NodeId
    data: Any
    view_sig: Optional[Signature] = None
    data_sig: Optional[Signature] = None

    @cached_property
    def _data_immutable(self) -> bool:
        """Whether ``data`` can never change (stable per message).

        The flyweight memos below are only sound for messages whose payload
        is deeply immutable — a list payload mutated in place must see its
        digest, wire size and verification verdict recomputed, exactly as
        the seed recomputed them on every access.
        """
        return is_deeply_immutable(self.data)

    @property
    def data_digest(self) -> str:
        """Digest of the payload used for signing and vote matching."""
        if _FLYWEIGHT_ENABLED:
            cached = self.__dict__.get("_memo_data_digest")
            if cached is not None:
                return cached
        digest = message_data_digest(self.data)
        if _FLYWEIGHT_ENABLED and self._data_immutable:
            self.__dict__["_memo_data_digest"] = digest
        return digest

    @property
    def wire_size_bytes(self) -> int:
        """Bytes on the wire: header + payload + signatures."""
        if _FLYWEIGHT_ENABLED:
            cached = self.__dict__.get("_memo_wire_size")
            if cached is not None:
                return cached
        size = MESSAGE_HEADER_BYTES + payload_wire_size(self.data)
        for signature in (self.view_sig, self.data_sig):
            if signature is not None:
                size += signature.size_bytes
        if _FLYWEIGHT_ENABLED and self._data_immutable:
            self.__dict__["_memo_wire_size"] = size
        return size

    def precompute(self) -> "ProtocolMessage":
        """Warm every per-message flyweight before the message hits the wire.

        Touches the digest and wire-size memos so the O(n·d) hops of a flood
        and the n verifications all reuse one computation.  Raw application
        payloads without a ``wire_size_bytes`` attribute are instead sized
        through :data:`~repro.crypto.hashing.canonical_cache` by the network
        layer, which memoizes them on first touch.

        A no-op when the flyweight is disabled: warming nothing is work
        the seed never did, and the legacy-mode benchmark baseline must
        not pay for it.
        """
        if _FLYWEIGHT_ENABLED:
            self.data_digest  # noqa: B018  # property read warms the memo
            self.wire_size_bytes  # noqa: B018  # property read warms the memo
        return self

    def matches(self, msg_type: MessageType, view: View) -> bool:
        """The ``MatchingMsg`` helper of Algorithm 1."""
        return self.msg_type == msg_type and self.view == view


def message_data_digest(data: Any) -> str:
    """Canonical digest of a message payload."""
    if isinstance(data, Block):
        return data.block_hash
    if isinstance(data, QuorumCertificate):
        return data.digest
    if isinstance(data, ProtocolMessage):
        return sha256_hex((data.msg_type.value, data.view, data.round, data.data_digest))
    if isinstance(data, (list, tuple)):
        return sha256_hex([message_data_digest(item) for item in data])
    return sha256_hex(data)


def make_message(
    scheme: SignatureScheme,
    sender: NodeId,
    msg_type: MessageType,
    view: View,
    data: Any,
    round_number: Round = 0,
) -> ProtocolMessage:
    """Create and sign a protocol message (Algorithm 1's ``Msg`` function)."""
    view_sig = scheme.sign(sender, ("view", msg_type.value, view))
    data_sig = scheme.sign(sender, ("data", message_data_digest(data), view))
    return ProtocolMessage(
        msg_type=msg_type,
        view=view,
        round=round_number,
        sender=sender,
        data=data,
        view_sig=view_sig,
        data_sig=data_sig,
    ).precompute()


def verify_message(scheme: SignatureScheme, verifier: NodeId, message: ProtocolMessage) -> bool:
    """Verify both signatures of a protocol message.

    The outcome is verifier-independent, so it is memoized per (message,
    scheme): after the first replica checks a flooded message, the other
    n-1 replicas reuse the verdict.  Their per-verifier operation counts
    (Table 3) are still recorded via :meth:`SignatureScheme.note_verify`,
    and verification *energy* is charged by the replica layer either way —
    only the redundant HMAC work is skipped.
    """
    if message.view_sig is None or message.data_sig is None:
        return False
    if message.view_sig.signer != message.sender or message.data_sig.signer != message.sender:
        return False
    if _FLYWEIGHT_ENABLED:
        memo = message.__dict__.get("_verified_by")
        if memo is not None and memo[0] is scheme:
            scheme.note_verify(verifier, 2)
            return memo[1]
    view_ok = scheme.verify(
        verifier, ("view", message.msg_type.value, message.view), message.view_sig
    )
    data_ok = scheme.verify(
        verifier, ("data", message.data_digest, message.view), message.data_sig
    )
    result = view_ok and data_ok
    if _FLYWEIGHT_ENABLED and message._data_immutable:
        message.__dict__["_verified_by"] = (scheme, result)
    return result


@dataclass(frozen=True)
class QuorumCertificate:
    """A certificate of f+1 matching signed messages (Algorithm 1's ``QC``)."""

    cert_type: MessageType
    view: View
    digest: str
    signers: Tuple[NodeId, ...]
    signatures: Tuple[Signature, ...] = field(default_factory=tuple)
    block: Optional[Block] = None

    @_frozen_memo
    def wire_size_bytes(self) -> int:
        """Bytes of the certificate: digest + all contained signatures."""
        signature_bytes = sum(sig.size_bytes for sig in self.signatures)
        block_bytes = self.block.wire_size_bytes if self.block is not None else 0
        return 32 + signature_bytes + block_bytes

    def matches(self, cert_type: MessageType, view: View) -> bool:
        """The ``MatchingQC`` helper of Algorithm 1."""
        return self.cert_type == cert_type and self.view == view

    @property
    def size(self) -> int:
        """Number of signatures aggregated."""
        return len(self.signatures)


def make_qc(messages: list[ProtocolMessage], block: Optional[Block] = None) -> QuorumCertificate:
    """Combine matching signed messages into a quorum certificate.

    All messages must share the same type, view and data digest; duplicate
    signers are collapsed.
    """
    if not messages:
        raise ValueError("cannot build a QC from zero messages")
    first = messages[0]
    for message in messages[1:]:
        if message.msg_type != first.msg_type or message.view != first.view:
            raise ValueError("QC messages must share type and view")
        if message.data_digest != first.data_digest:
            raise ValueError("QC messages must share the same data digest")
    seen: dict[NodeId, Signature] = {}
    for message in messages:
        if message.data_sig is not None and message.sender not in seen:
            seen[message.sender] = message.data_sig
    return QuorumCertificate(
        cert_type=first.msg_type,
        view=first.view,
        digest=first.data_digest,
        signers=tuple(sorted(seen)),
        signatures=tuple(seen[s] for s in sorted(seen)),
        block=block,
    )


def make_view_qc(messages: list[ProtocolMessage]) -> QuorumCertificate:
    """Combine messages into a QC over their *view signatures*.

    Blame certificates do not care about the payload (a blame may carry an
    equivocation proof or nothing at all); Algorithm 1's ``QC`` function
    aggregates the ``viewSig`` fields — signatures over (type, view) — which
    is what this constructor does.
    """
    if not messages:
        raise ValueError("cannot build a QC from zero messages")
    first = messages[0]
    for message in messages[1:]:
        if message.msg_type != first.msg_type or message.view != first.view:
            raise ValueError("QC messages must share type and view")
    seen: dict[NodeId, Signature] = {}
    for message in messages:
        if message.view_sig is not None and message.sender not in seen:
            seen[message.sender] = message.view_sig
    return QuorumCertificate(
        cert_type=first.msg_type,
        view=first.view,
        digest=sha256_hex(("view", first.msg_type.value, first.view)),
        signers=tuple(sorted(seen)),
        signatures=tuple(seen[s] for s in sorted(seen)),
    )


def _memoized_valid_count(
    scheme: SignatureScheme,
    verifier: NodeId,
    qc: "QuorumCertificate",
    slot: str,
    payload: Tuple[Any, ...],
) -> Optional[int]:
    """Count valid signatures on a QC, memoized per (certificate, scheme).

    Returns ``None`` when a signature's declared signer does not match the
    certificate's signer list (the caller must reject the QC outright; that
    adversarial shape is never memoized).  Replicas after the first reuse
    the count but still book their verification operations via
    :meth:`SignatureScheme.note_verify`.
    """
    if _FLYWEIGHT_ENABLED:
        memo = qc.__dict__.get(slot)
        if memo is not None and memo[0] is scheme:
            scheme.note_verify(verifier, len(qc.signatures))
            return memo[1]
    valid = 0
    for signer, signature in zip(qc.signers, qc.signatures):
        if signature.signer != signer:
            return None
        if scheme.verify(verifier, payload, signature):
            valid += 1
    if _FLYWEIGHT_ENABLED:
        qc.__dict__[slot] = (scheme, valid)
    return valid


def verify_view_qc(
    scheme: SignatureScheme,
    verifier: NodeId,
    qc: QuorumCertificate,
    threshold: int,
) -> bool:
    """Verify a view-signature QC (e.g. a blame certificate)."""
    if len(set(qc.signers)) < threshold:
        return False
    if len(qc.signers) != len(qc.signatures):
        return False
    valid = _memoized_valid_count(
        scheme, verifier, qc, "_view_valid_by", ("view", qc.cert_type.value, qc.view)
    )
    if valid is None:
        return False
    return valid >= threshold


def verify_qc(
    scheme: SignatureScheme,
    verifier: NodeId,
    qc: QuorumCertificate,
    threshold: int,
) -> bool:
    """Verify a quorum certificate: enough distinct valid signatures over the digest."""
    if len(set(qc.signers)) < threshold:
        return False
    if len(qc.signers) != len(qc.signatures):
        return False
    valid = _memoized_valid_count(
        scheme, verifier, qc, "_data_valid_by", ("data", qc.digest, qc.view)
    )
    if valid is None:
        return False
    return valid >= threshold
