"""Core SMR data structures and protocol implementations."""

from repro.core.types import Command, Batch, NodeId, View, Round, FIRST_STEADY_ROUND, FIRST_VIEW
from repro.core.blocks import Block, BlockStore, GENESIS, make_block, make_genesis
from repro.core.messages import (
    MessageType,
    ProtocolMessage,
    QuorumCertificate,
    make_message,
    verify_message,
    make_qc,
    verify_qc,
    make_view_qc,
    verify_view_qc,
)
from repro.core.txpool import TxPool
from repro.core.ledger import CommittedLog, SafetyChecker, SafetyReport, SafetyViolation
from repro.core.client import Client, CommandFactory, AckRouter, Acknowledgement
from repro.core.config import ProtocolConfig, RunStats, round_robin_leader
from repro.core.replica_base import BaseReplica
from repro.core.eesmr import EesmrReplica
from repro.core.baselines import (
    SyncHotStuffReplica,
    OptSyncReplica,
    TrustedBaselineReplica,
    TrustedControlNode,
)
from repro.core.adversary import (
    FaultPlan,
    CrashReplica,
    SilentLeaderReplica,
    EquivocatingLeaderReplica,
    SilentReplica,
    replica_class_for,
)

__all__ = [
    "Command",
    "Batch",
    "NodeId",
    "View",
    "Round",
    "FIRST_STEADY_ROUND",
    "FIRST_VIEW",
    "Block",
    "BlockStore",
    "GENESIS",
    "make_block",
    "make_genesis",
    "MessageType",
    "ProtocolMessage",
    "QuorumCertificate",
    "make_message",
    "verify_message",
    "make_qc",
    "verify_qc",
    "make_view_qc",
    "verify_view_qc",
    "TxPool",
    "CommittedLog",
    "SafetyChecker",
    "SafetyReport",
    "SafetyViolation",
    "Client",
    "CommandFactory",
    "AckRouter",
    "Acknowledgement",
    "ProtocolConfig",
    "RunStats",
    "round_robin_leader",
    "BaseReplica",
    "EesmrReplica",
    "SyncHotStuffReplica",
    "OptSyncReplica",
    "TrustedBaselineReplica",
    "TrustedControlNode",
    "FaultPlan",
    "CrashReplica",
    "SilentLeaderReplica",
    "EquivocatingLeaderReplica",
    "SilentReplica",
    "replica_class_for",
]
