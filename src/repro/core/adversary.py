"""Byzantine behaviours used by experiments and tests.

The paper's evaluation needs three adversarial scenarios:

* a *stalling* (no-progress) leader, which triggers the crash-style view
  change measured in Fig. 2e;
* an *equivocating* leader, which triggers the Byzantine view change
  (also Fig. 2e) and is the behaviour the 4Δ quiet-period commit rule
  defends against;
* *fail-stop / silent* replicas that additionally refuse to relay floods,
  which is the partitioning threat the hypergraph fault bound (Appendix A)
  must withstand.

Each behaviour is implemented as a replica subclass so the Byzantine node
still runs real protocol code (it signs real messages, consumes real
energy) — only the specific misbehaviour differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.blocks import make_block
from repro.core.eesmr.replica import EesmrReplica
from repro.core.messages import MessageType
from repro.core.types import Round


#: Behaviours a :class:`FaultPlan` may name (the keys of the class table
#: built at the bottom of this module).
ALLOWED_BEHAVIOURS = ("crash", "silent_leader", "equivocate", "silent")


@dataclass(frozen=True)
class FaultPlan:
    """Which nodes are faulty and how they misbehave.

    Attributes:
        faulty: Node ids under adversary control.
        behaviour: One of :data:`ALLOWED_BEHAVIOURS`; anything else raises
            ``ValueError`` at construction so a typo cannot silently run an
            honest deployment.
        trigger_round: Steady-state round at which a leader misbehaviour is
            triggered (proposals before it are honest).
        crash_time: Virtual time at which ``"crash"`` nodes stop.
    """

    faulty: tuple[int, ...] = ()
    behaviour: str = "crash"
    trigger_round: Round = 3
    crash_time: float = 0.0

    def __post_init__(self) -> None:
        if self.behaviour not in ALLOWED_BEHAVIOURS:
            raise ValueError(
                f"unknown adversary behaviour {self.behaviour!r}; "
                f"allowed: {ALLOWED_BEHAVIOURS}"
            )
        if self.crash_time < 0:
            raise ValueError(f"crash_time cannot be negative: {self.crash_time}")

    @property
    def f_actual(self) -> int:
        return len(self.faulty)


class SilentLeaderReplica(EesmrReplica):
    """A leader that stops proposing at (or after) ``trigger_round``.

    Until the trigger it behaves correctly, so earlier blocks commit; from
    the trigger onwards it never proposes again, which makes the other
    nodes' T_blame expire and starts the crash-style view change.
    """

    def __init__(self, *args, trigger_round: Round = 3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.trigger_round = trigger_round

    def _propose_next(self) -> None:
        if self.is_leader(self.v_cur) and self.next_propose_round >= self.trigger_round:
            return
        super()._propose_next()


class EquivocatingLeaderReplica(EesmrReplica):
    """A leader that proposes two conflicting blocks in ``trigger_round``."""

    def __init__(self, *args, trigger_round: Round = 3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.trigger_round = trigger_round
        self._equivocated = False

    def _propose_next(self) -> None:
        if (
            not self._equivocated
            and self.is_leader(self.v_cur)
            and self.next_propose_round >= self.trigger_round
        ):
            self._equivocate(self.next_propose_round)
            return
        super()._propose_next()

    def _equivocate(self, round_number: Round) -> None:
        """Broadcast two different blocks for the same (view, round)."""
        self._equivocated = True
        parent = self.leader_chain_tip
        first = make_block(parent, self.pid, self.v_cur, round_number, self.next_batch())
        # The conflicting twin carries no commands so its hash necessarily differs.
        second = make_block(parent, self.pid, self.v_cur, round_number, [])
        for block in (first, second):
            self.store_block(block)
            message = self.sign_message(
                MessageType.PROPOSE, block, view=self.v_cur, round_number=round_number
            )
            self.broadcast(message)
        self.stats.proposals_made += 2


class CrashReplica(EesmrReplica):
    """A fail-stop node: behaves correctly until ``crash_time`` then goes dark.

    Crashed nodes also stop relaying floods (their relay policy is installed
    by the experiment runner), which is the worst case for connectivity.
    """

    def __init__(self, *args, crash_time: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.crash_time = crash_time

    def start(self) -> None:
        super().start()
        self.after(self.crash_time, self.crash, label="adversary:crash")


class SilentReplica(EesmrReplica):
    """A Byzantine non-leader that never sends anything (it still listens).

    Unlike :class:`CrashReplica` it keeps consuming receive energy, which
    is the "energy fault" behaviour discussed in Section 4: it contributes
    nothing while forcing the correct nodes to run the protocol without its
    votes.
    """

    def broadcast(self, message) -> None:  # type: ignore[override]
        return

    def send(self, destination, message) -> None:  # type: ignore[override]
        return

    def _propose_next(self) -> None:
        return


#: Behaviour name -> Byzantine replica class implementing it.
BEHAVIOUR_CLASSES = {
    "crash": CrashReplica,
    "silent_leader": SilentLeaderReplica,
    "equivocate": EquivocatingLeaderReplica,
    "silent": SilentReplica,
}


def behaviour_class(behaviour: str):
    """The Byzantine replica class implementing ``behaviour``."""
    try:
        return BEHAVIOUR_CLASSES[behaviour]
    except KeyError:
        raise ValueError(
            f"unknown adversary behaviour {behaviour!r}; allowed: {ALLOWED_BEHAVIOURS}"
        ) from None


def behaviour_kwargs(plan: FaultPlan) -> dict:
    """Constructor kwargs for the behaviour class of ``plan``."""
    if plan.behaviour == "crash":
        return {"crash_time": plan.crash_time}
    if plan.behaviour in ("silent_leader", "equivocate"):
        return {"trigger_round": plan.trigger_round}
    return {}


def replica_class_for(plan: FaultPlan, pid: int):
    """The replica class (and kwargs) to instantiate for ``pid`` under ``plan``."""
    if pid not in plan.faulty:
        return EesmrReplica, {}
    return behaviour_class(plan.behaviour), behaviour_kwargs(plan)
