"""Clients: synthetic command generation and f+1-ack acceptance.

The paper abstracts clients away ("The clients wait to receive f+1
identical acknowledgments with execution results and accept the results")
and explicitly excludes client-side costs from the energy model.  The
reproduction therefore models clients as out-of-band entities: they inject
commands directly into replicas' txpools (no radio energy) and receive
commit acknowledgements through a callback, accepting a command once f+1
distinct replicas acknowledged the same log position for it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.types import Command
from repro.sim.rng import SeededRNG


@dataclass(slots=True)
class Acknowledgement:
    """A replica's notification that a command committed at a log position."""

    replica: int
    command_id: str
    height: int
    block_hash: str


@dataclass
class ClientStats:
    """Counters describing a client's view of the run."""

    submitted: int = 0
    accepted: int = 0
    pending: int = 0


class CommandFactory:
    """Deterministic generator of synthetic client commands."""

    def __init__(self, client_id: int = 0, payload_size_bytes: int = 16, rng: Optional[SeededRNG] = None) -> None:
        self.client_id = client_id
        self.payload_size_bytes = payload_size_bytes
        self.rng = rng or SeededRNG(client_id)
        self._counter = itertools.count()

    def next_command(self, arrival_time: Optional[float] = None) -> Command:
        """Produce the next command with a unique id.

        ``arrival_time`` stamps the command with the virtual time it
        entered the system (open-loop engines); ``None`` — the default and
        the closed-loop behaviour — leaves the command unstamped.  The
        stamp is excluded from the command's canonical representation, so
        stamped and unstamped streams serialise identically.
        """
        index = next(self._counter)
        digest = self.rng.bytes(8).hex()
        return Command(
            command_id=f"c{self.client_id}-{index}",
            client_id=self.client_id,
            payload_size_bytes=self.payload_size_bytes,
            payload_digest=digest,
            arrival_time=arrival_time,
        )

    def batch(self, count: int, arrival_time: Optional[float] = None) -> List[Command]:
        """Produce ``count`` commands (all stamped with ``arrival_time``)."""
        if count < 0:
            raise ValueError("count cannot be negative")
        return [self.next_command(arrival_time) for _ in range(count)]


class Client:
    """An honest client that accepts a result after f+1 identical acks."""

    def __init__(self, client_id: int, f: int, payload_size_bytes: int = 16, seed: int = 0) -> None:
        self.client_id = client_id
        self.f = f
        self.factory = CommandFactory(client_id, payload_size_bytes, SeededRNG(seed).child("client", client_id))
        self.submitted: Dict[str, Command] = {}
        # command id -> {(height, block_hash) -> set of acking replicas}
        self._acks: Dict[str, Dict[Tuple[int, str], Set[int]]] = {}
        self.accepted: Dict[str, Tuple[int, str]] = {}

    # ------------------------------------------------------------ submission
    def create_commands(self, count: int) -> List[Command]:
        """Create commands and remember them as submitted."""
        commands = self.factory.batch(count)
        for command in commands:
            self.submitted[command.command_id] = command
        return commands

    # ----------------------------------------------------------------- acks
    def on_ack(self, ack: Acknowledgement) -> bool:
        """Record an acknowledgement; returns ``True`` when the command is newly accepted."""
        if ack.command_id in self.accepted:
            return False
        per_position = self._acks.get(ack.command_id)
        if per_position is None:
            per_position = self._acks[ack.command_id] = {}
        key = (ack.height, ack.block_hash)
        replicas = per_position.get(key)
        if replicas is None:
            replicas = per_position[key] = set()
        replicas.add(ack.replica)
        if len(replicas) >= self.f + 1:
            self.accepted[ack.command_id] = key
            return True
        return False

    # -------------------------------------------------------------- queries
    def is_accepted(self, command_id: str) -> bool:
        """Whether f+1 replicas acknowledged the command at the same position."""
        return command_id in self.accepted

    def stats(self) -> ClientStats:
        """Summary counters."""
        return ClientStats(
            submitted=len(self.submitted),
            accepted=len(self.accepted),
            pending=len(self.submitted) - len(self.accepted),
        )

    def unaccepted_ids(self) -> List[str]:
        """Commands still waiting for f+1 acknowledgements."""
        return [cid for cid in self.submitted if cid not in self.accepted]


class AckRouter:
    """Fan-out helper wiring replica commit notifications to clients."""

    def __init__(self, clients: Iterable[Client]) -> None:
        self._clients = {client.client_id: client for client in clients}

    def route(self, replica: int, command: Command, height: int, block_hash: str) -> None:
        """Deliver an acknowledgement to the issuing client (if known)."""
        client = self._clients.get(command.client_id)
        if client is None:
            return
        client.on_ack(
            Acknowledgement(
                replica=replica,
                command_id=command.command_id,
                height=height,
                block_hash=block_hash,
            )
        )

    def clients(self) -> List[Client]:
        return list(self._clients.values())
