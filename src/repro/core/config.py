"""Protocol configuration shared by EESMR and the baseline protocols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.types import FIRST_VIEW, NodeId, View


@dataclass(frozen=True)
class RoundRobinLeader:
    """The default ``Leader(v)`` function: round-robin over the n nodes.

    A callable value object rather than a closure so that configs (and
    everything holding one — run results, scenario-cell outcomes) can
    cross process boundaries: the parallel scenario matrix pickles cell
    outcomes back from its worker processes.
    """

    n: int

    def __call__(self, view: View) -> NodeId:
        return (view - FIRST_VIEW) % self.n


def round_robin_leader(n: int) -> Callable[[View], NodeId]:
    """Build the default round-robin leader schedule."""
    if n <= 0:
        raise ValueError("n must be positive")
    return RoundRobinLeader(n)


@dataclass
class ProtocolConfig:
    """Static configuration of a protocol deployment.

    Attributes:
        n: Total number of nodes.
        f: Maximum number of Byzantine nodes tolerated (f < n/2).
        delta: The synchrony bound Δ — the public upper bound on message
            delivery time between correct nodes (after flooding).
        signature_scheme: Name of the signature scheme to use (see
            :func:`repro.crypto.available_schemes`); the paper recommends
            RSA-1024 for its cheap verification.
        batch_size: Number of client commands per block.
        command_payload_bytes: Size of each synthetic command payload (the
            paper's |b_i|, e.g. 16 B / 128 B / 256 B in Fig. 2d).
        target_height: Leaders stop proposing once their chain reaches this
            height; this is the number of consensus units per experiment.
        block_interval: Virtual time the leader waits between successive
            proposals.  EESMR's block period is 0 in theory; a non-zero
            interval is used when an experiment needs earlier blocks to
            commit before a fault is injected.
        txpool_limit: Bound on each replica's pending-command pool.
            ``None`` (the default, and the seed behaviour) is unbounded;
            a bounded pool drops overflow arrivals with an explicit
            admission verdict (see :mod:`repro.core.txpool`).
        leader_schedule: Maps view numbers to leader node ids.
        charge_crypto_energy: Charge sign/verify/hash energy to meters.
        charge_sleep_energy: Charge the idle baseline over elapsed time.
    """

    n: int
    f: int
    delta: float
    signature_scheme: str = "rsa-1024"
    batch_size: int = 1
    command_payload_bytes: int = 16
    target_height: int = 5
    block_interval: float = 0.0
    txpool_limit: Optional[int] = None
    leader_schedule: Optional[Callable[[View], NodeId]] = None
    charge_crypto_energy: bool = True
    charge_sleep_energy: bool = False

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("n must be at least 2")
        if self.f < 0:
            raise ValueError("f cannot be negative")
        if 2 * self.f >= self.n:
            raise ValueError(
                f"the synchronous model requires f < n/2 (got n={self.n}, f={self.f})"
            )
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.target_height < 1:
            raise ValueError("target_height must be at least 1")
        if self.txpool_limit is not None and self.txpool_limit < 1:
            raise ValueError("txpool_limit must be at least 1 (or None for unbounded)")
        if self.leader_schedule is None:
            self.leader_schedule = round_robin_leader(self.n)

    @property
    def quorum(self) -> int:
        """Size of a quorum certificate: f + 1 signatures."""
        return self.f + 1

    def leader_of(self, view: View) -> NodeId:
        """The leader of a given view."""
        assert self.leader_schedule is not None
        return self.leader_schedule(view)


@dataclass
class RunStats:
    """Per-replica protocol statistics collected during a run."""

    proposals_made: int = 0
    proposals_received: int = 0
    blocks_committed: int = 0
    blames_sent: int = 0
    equivocations_detected: int = 0
    view_changes_completed: int = 0
    votes_sent: int = 0
    certificates_formed: int = 0
    extra: dict = field(default_factory=dict)
