"""Blocks, the hash-chained unit of the linearizable log.

A block carries a batch of client commands and the hash of its parent, as
in Section 2 of the paper ("Blocks").  The genesis block ``G`` has height 0
and every other block's height is its parent's height plus one.  Because
blocks are hash-chained, a vote (or commit) for a block implicitly endorses
all of its ancestors — the property EESMR's "voting in the head" and the
view-change certificate logic both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterator, List, Optional

from repro.core.types import Batch, Command, NodeId, Round, View
from repro.crypto.hashing import sha256_hex

#: Hash placeholder used as the genesis block's parent.
NO_PARENT = "genesis"


@dataclass(frozen=True)
class Block:
    """An immutable block of the replicated log."""

    parent_hash: str
    height: int
    view: View
    round: Round
    proposer: NodeId
    batch: Batch = field(default_factory=Batch)

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("height cannot be negative")

    @cached_property
    def block_hash(self) -> str:
        """Deterministic content hash (cached per instance)."""
        return sha256_hex(
            {
                "parent": self.parent_hash,
                "height": self.height,
                "view": self.view,
                "round": self.round,
                "proposer": self.proposer,
                "commands": list(self.batch.command_ids),
            }
        )

    @cached_property
    def wire_size_bytes(self) -> int:
        """Bytes of the block on the wire: header + parent hash + payload."""
        header = 4 + 4 + 4 + 4  # height, view, round, proposer
        return header + 32 + self.batch.wire_size_bytes

    @property
    def is_genesis(self) -> bool:
        return self.parent_hash == NO_PARENT and self.height == 0

    def short_hash(self) -> str:
        """First 10 hex chars of the block hash (for logs and test messages)."""
        return self.block_hash[:10]



def make_genesis() -> Block:
    """The genesis block ``G`` shared by all nodes (height 0, view 0)."""
    return Block(parent_hash=NO_PARENT, height=0, view=0, round=0, proposer=-1)


GENESIS = make_genesis()


def make_block(
    parent: Block,
    proposer: NodeId,
    view: View,
    round_number: Round,
    commands: Optional[List[Command]] = None,
) -> Block:
    """Create a child block extending ``parent`` (the ``CreateProposal`` helper)."""
    return Block(
        parent_hash=parent.block_hash,
        height=parent.height + 1,
        view=view,
        round=round_number,
        proposer=proposer,
        batch=Batch(tuple(commands or ())),
    )


class BlockStore:
    """A node's local store of every block it has seen.

    The store provides the ancestry queries the protocol needs: does block
    ``b`` extend block ``a``, what is the chain from genesis to ``b``, and
    do two blocks conflict (neither extends the other).  Chain
    synchronization — requesting missing parents from the sender — is
    modelled implicitly: since proposals are flooded to all nodes, every
    correct node stores every proposed block, and the protocol timers
    already include the paper's chain-synchronization allowance.
    """

    def __init__(self, genesis: Optional[Block] = None) -> None:
        self.genesis = genesis or GENESIS
        self._blocks: Dict[str, Block] = {self.genesis.block_hash: self.genesis}
        # Hashes known to have a complete ancestry down to genesis, so
        # repeated has_ancestry checks on a growing chain are amortized
        # O(1) instead of a fresh walk to genesis every time.
        self._rooted: set[str] = {self.genesis.block_hash}

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def add(self, block: Block) -> None:
        """Store a block (idempotent)."""
        self._blocks[block.block_hash] = block

    def add_if_absent(self, block: Block) -> bool:
        """Store a block unless present; returns whether it was new.

        One hash fetch instead of the contains-then-add double lookup on
        the proposal hot path.
        """
        block_hash = block.block_hash
        if block_hash in self._blocks:
            return False
        self._blocks[block_hash] = block
        return True

    def get(self, block_hash: str) -> Optional[Block]:
        """Retrieve a block by hash, or ``None`` when unknown."""
        return self._blocks.get(block_hash)

    def has_ancestry(self, block: Block) -> bool:
        """Whether every ancestor of ``block`` down to genesis is known."""
        rooted = self._rooted
        walked = []
        current = block
        while True:
            if current.block_hash in rooted:
                break
            if current.is_genesis:
                break
            walked.append(current.block_hash)
            parent = self._blocks.get(current.parent_hash)
            if parent is None:
                return False
            current = parent
        rooted.update(walked)
        return True

    def iter_ancestors(self, block: Block) -> Iterator[Block]:
        """Yield ``block`` and then its ancestors up to (and including) genesis."""
        current: Optional[Block] = block
        while current is not None:
            yield current
            if current.is_genesis:
                return
            current = self._blocks.get(current.parent_hash)

    def chain(self, block: Block) -> List[Block]:
        """The chain from genesis to ``block`` (inclusive, genesis first)."""
        ancestors = list(self.iter_ancestors(block))
        if not ancestors or not ancestors[-1].is_genesis:
            raise KeyError(f"chain of {block.short_hash()} has missing ancestors")
        return list(reversed(ancestors))

    def extends(self, descendant: Block, ancestor: Block) -> bool:
        """Whether ``descendant`` extends (or equals) ``ancestor``."""
        if descendant.height < ancestor.height:
            return False
        target = ancestor.block_hash
        for candidate in self.iter_ancestors(descendant):
            if candidate.block_hash == target:
                return True
            if candidate.height < ancestor.height:
                return False
        return False

    def conflicts(self, block_a: Block, block_b: Block) -> bool:
        """Two blocks conflict when neither extends the other."""
        return not self.extends(block_a, block_b) and not self.extends(block_b, block_a)

    def highest_common_ancestor(self, block_a: Block, block_b: Block) -> Block:
        """The deepest block on both chains (genesis in the worst case)."""
        ancestors_a = {b.block_hash for b in self.iter_ancestors(block_a)}
        for candidate in self.iter_ancestors(block_b):
            if candidate.block_hash in ancestors_a:
                return candidate
        return self.genesis
