"""Shared type aliases and simple value objects for the SMR core."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Node identifier (index into the system N = {p_1, ..., p_n}).
NodeId = int

#: View number; views are numbered from 1 as in the paper.
View = int

#: Round number; rounds 1 and 2 of every view are reserved for the view
#: change, the steady state starts at round 3.
Round = int

#: The first steady-state round of every view.
FIRST_STEADY_ROUND: Round = 3

#: The first view of the protocol.
FIRST_VIEW: View = 1


@dataclass(frozen=True)
class Command:
    """A client request (an element of ``Cmds``).

    Attributes:
        command_id: Unique identifier assigned by the issuing client.
        client_id: The issuing client (0 for synthetic workloads).
        payload_size_bytes: Size of the opaque request body.  The
            reproduction never inspects request semantics — the paper
            explicitly delegates request validity to the application layer —
            so only the size matters for energy accounting.
        payload_digest: Short digest standing in for the request body.
        arrival_time: Virtual time the command arrived at the system, or
            ``None`` for pre-loaded (closed-loop) workloads.  Excluded from
            ``repr`` and equality on purpose: the canonical serialisation
            (``json.dumps(..., default=repr)``) and therefore every wire
            size, block hash and golden trace fingerprint must not change
            when a workload engine annotates arrivals.
    """

    command_id: str
    client_id: int = 0
    payload_size_bytes: int = 16
    payload_digest: str = ""
    arrival_time: Optional[float] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_size_bytes < 0:
            raise ValueError("payload size cannot be negative")

    @property
    def wire_size_bytes(self) -> int:
        """Bytes this command occupies inside a block."""
        # command id (bounded), client id, and the payload itself.
        return 8 + 4 + self.payload_size_bytes


@dataclass(frozen=True)
class Batch:
    """An ordered batch of commands proposed together in one block."""

    commands: Tuple[Command, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.commands)

    @property
    def wire_size_bytes(self) -> int:
        """Total bytes of all commands in the batch."""
        return sum(command.wire_size_bytes for command in self.commands)

    @property
    def command_ids(self) -> Tuple[str, ...]:
        return tuple(command.command_id for command in self.commands)
