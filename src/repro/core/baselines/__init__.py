"""Baseline SMR protocols the paper compares EESMR against."""

from repro.core.baselines.sync_hotstuff import SyncHotStuffReplica
from repro.core.baselines.optsync import OptSyncReplica
from repro.core.baselines.trusted_baseline import TrustedBaselineReplica, TrustedControlNode

__all__ = [
    "SyncHotStuffReplica",
    "OptSyncReplica",
    "TrustedBaselineReplica",
    "TrustedControlNode",
]
