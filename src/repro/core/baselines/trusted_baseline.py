"""The trusted-control-node baseline protocol (Section 5.1 of the paper).

The baseline assumes an online trusted node (a control server, base
station or satellite uplink) that every CPS node can reach over a more
expensive medium (the paper's example: 4G, while the CPS nodes could talk
to each other over WiFi or BLE).  Per consensus unit:

* every CPS node uploads its pending commands to the trusted node;
* the trusted node orders them into a block, signs it once, and sends the
  signed block back to every CPS node;
* each CPS node verifies the single signature and commits.

There is no inter-replica communication at all, so the protocol is
trivially safe and live given the trust assumption — its cost is entirely
the per-node up/down traffic on the expensive medium, which is what the
feasible-region analysis of Fig. 1 compares EESMR against.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.blocks import Block, make_block
from repro.core.client import AckRouter
from repro.core.config import ProtocolConfig
from repro.core.messages import MessageType, ProtocolMessage
from repro.core.replica_base import BaseReplica
from repro.core.types import NodeId
from repro.crypto.signatures import SignatureScheme
from repro.energy.meter import EnergyMeter
from repro.net.network import SimulatedNetwork
from repro.sim.process import Process
from repro.sim.scheduler import Simulator


class TrustedControlNode(Process):
    """The trusted node: collects requests, orders them, signs, replies.

    Its own energy is *not* part of the comparison (it is assumed to be
    mains-powered); only the CPS replicas' meters matter.
    """

    def __init__(
        self,
        sim: Simulator,
        pid: NodeId,
        config: ProtocolConfig,
        scheme: SignatureScheme,
        network: SimulatedNetwork,
        round_interval: float,
    ) -> None:
        super().__init__(sim, pid, name=f"control{pid}")
        self.config = config
        self.scheme = scheme
        self.network = network
        self.round_interval = round_interval
        self.chain_tip: Block = None  # type: ignore[assignment]
        self.pending: List = []
        self.replica_ids: List[NodeId] = []
        self.blocks_ordered = 0

    def start(self) -> None:
        from repro.core.blocks import GENESIS

        self.chain_tip = GENESIS
        self.after(self.round_interval, self._order_round, label="tb:order")

    def on_message(self, sender: int, message: Any) -> None:
        if not isinstance(message, ProtocolMessage):
            return
        if message.msg_type != MessageType.TB_REQUEST:
            return
        commands = message.data
        if isinstance(commands, (list, tuple)):
            self.pending.extend(commands)

    def _order_round(self) -> None:
        if self.crashed:
            return
        if self.blocks_ordered >= self.config.target_height:
            return
        batch = self.pending[: self.config.batch_size]
        self.pending = self.pending[len(batch):]
        block = make_block(
            parent=self.chain_tip,
            proposer=self.pid,
            view=1,
            round_number=self.blocks_ordered + 1,
            commands=batch,
        )
        self.chain_tip = block
        self.blocks_ordered += 1
        order = ProtocolMessage(
            msg_type=MessageType.TB_ORDER,
            view=1,
            round=block.height,
            sender=self.pid,
            data=block,
            view_sig=self.scheme.sign(self.pid, ("view", MessageType.TB_ORDER.value, 1)),
            data_sig=self.scheme.sign(self.pid, ("data", block.block_hash, 1)),
        )
        for replica_id in self.replica_ids:
            self.network.send(self.pid, replica_id, order)
        if self.blocks_ordered < self.config.target_height:
            self.after(self.round_interval, self._order_round, label="tb:order")


class TrustedBaselineReplica(BaseReplica):
    """A CPS node in the trusted-baseline protocol."""

    protocol_name = "trusted-baseline"

    def __init__(
        self,
        sim: Simulator,
        pid: NodeId,
        config: ProtocolConfig,
        scheme: SignatureScheme,
        network: SimulatedNetwork,
        meter: EnergyMeter,
        control_node_id: NodeId,
        ack_router: Optional[AckRouter] = None,
    ) -> None:
        super().__init__(sim, pid, config, scheme, network, meter, ack_router)
        self.control_node_id = control_node_id
        # Retransmission latency on a lossy wire can reorder TB_ORDERs;
        # dangling blocks wait here (keyed by parent hash) until their
        # ancestry arrives.  Empty for the whole run on a clean medium.
        self._pending_orders: Dict[str, Block] = {}

    def start(self) -> None:
        self._upload_pending()

    def _upload_pending(self) -> None:
        """Send pending commands to the trusted node over the expensive medium."""
        commands = self.txpool.peek_batch(self.config.batch_size)
        request = self.sign_message(MessageType.TB_REQUEST, tuple(commands), view=1)
        self.send(self.control_node_id, request)

    def on_message(self, sender: int, message: Any) -> None:
        if not isinstance(message, ProtocolMessage):
            return
        # Catch-up state transfer between leaves: the control node keeps no
        # per-leaf delivery state, so a leaf that missed TB_ORDERs (power
        # cycle, partition) recovers from its peers.  With no certificates
        # in this protocol, adoption needs f+1 matching peer responses.
        if message.msg_type == MessageType.SYNC_REQUEST:
            self._on_sync_request(message)
            return
        if message.msg_type == MessageType.SYNC_RESPONSE:
            self._on_sync_response(message)
            return
        if message.msg_type != MessageType.TB_ORDER or sender != self.control_node_id:
            return
        block = message.data
        if not isinstance(block, Block):
            return
        # One verification of the trusted node's signature per block.
        if message.data_sig is None:
            return
        if self.config.charge_crypto_energy:
            self.meter.charge_verify(self.scheme.verify_energy_j, self.sim.now, "tb-order")
        if not self.scheme.verify(self.pid, ("data", block.block_hash, 1), message.data_sig):
            return
        self.store_block(block)
        if self.blocks.has_ancestry(block):
            self.commit_chain(block)
            self._commit_buffered_orders()
        else:
            self._pending_orders[block.parent_hash] = block
        # Upload the next batch for the following consensus round.
        if self.committed_height < self.config.target_height:
            self._upload_pending()

    def _commit_buffered_orders(self) -> None:
        """Commit any buffered TB_ORDERs the new tip just gave ancestry to."""
        while True:
            child = self._pending_orders.pop(self.b_com.block_hash, None)
            if child is None:
                return
            self.commit_chain(child)

    def describe(self) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "committed_height": self.committed_height,
            "blocks_committed": self.stats.blocks_committed,
        }
