"""Sync HotStuff baseline (Abraham et al., S&P 2020), simplified.

This is the protocol the paper compares EESMR against (Fig. 2f, Fig. 3,
Table 3).  The implementation follows the synchronous steady state of
Sync HotStuff:

* the leader proposes block ``B_k`` carrying a certificate for ``B_{k-1}``;
* every node *votes* — an explicit signature — on every proposal and
  forwards both the proposal and its vote to everyone (the vote flood is
  what makes the per-block communication O(n^2 d) and the per-block
  verification O(n) per node);
* a node commits ``B_k`` 2Δ after voting if it saw no equivocation;
* a quorum of n/2 + 1 votes forms the certificate the leader attaches to
  the next proposal.

The view change (blame, quit view, status, new leader re-proposal) is the
standard synchronous one; it is cheaper than EESMR's because the steady
state already produced explicit certificates — exactly the trade-off the
paper quantifies (EESMR ≈2.8× cheaper steady state, ≈2× more expensive
view change).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.blocks import Block, make_block
from repro.core.client import AckRouter
from repro.core.config import ProtocolConfig
from repro.core.messages import (
    MessageType,
    ProtocolMessage,
    QuorumCertificate,
    make_qc,
    make_view_qc,
)
from repro.core.replica_base import BaseReplica
from repro.core.types import NodeId, View
from repro.crypto.signatures import SignatureScheme
from repro.energy.meter import EnergyMeter
from repro.net.network import SimulatedNetwork
from repro.sim.scheduler import Simulator


class SyncHotStuffReplica(BaseReplica):
    """A (simplified) Sync HotStuff node."""

    #: Human-readable protocol name used by the experiment harness.
    protocol_name = "sync-hotstuff"

    #: Sync HotStuff forms explicit vote certificates, so catch-up
    #: responses must carry one over the served tip: a recovering node
    #: never adopts an uncertified suffix (see BaseReplica's sync
    #: handlers).
    sync_requires_certificate = True

    #: How votes propagate.  ``"partial"`` mirrors the paper's measurement
    #: setup ("we made simplifying assumptions in favor of Sync HotStuff, by
    #: partially implementing vote forwarding"): a vote is multicast one hop
    #: to the node's neighbours and unicast to the leader, instead of being
    #: flooded network-wide.  ``"full"`` floods every vote (the textbook
    #: O(n^2 d) behaviour) and is used by the ablation benchmark.
    vote_forwarding = "partial"

    def __init__(
        self,
        sim: Simulator,
        pid: NodeId,
        config: ProtocolConfig,
        scheme: SignatureScheme,
        network: SimulatedNetwork,
        meter: EnergyMeter,
        ack_router: Optional[AckRouter] = None,
    ) -> None:
        super().__init__(sim, pid, config, scheme, network, meter, ack_router)
        self.leader_chain_tip: Block = self.blocks.genesis
        self.certs: Dict[str, QuorumCertificate] = {}
        self.votes: Dict[str, Dict[NodeId, ProtocolMessage]] = {}
        self.voted_blocks: set[str] = set()
        self.proposals_seen: Dict[Tuple[View, int], Dict[str, ProtocolMessage]] = {}
        self.commit_timers = self.make_timer_registry("t-commit")
        self.blame_timer = self.make_timer("t-blame", self._on_blame_timer)

        self.in_view_change = False
        self.blames: Dict[View, Dict[NodeId, ProtocolMessage]] = {}
        self.blamed_views: set[View] = set()
        self.quit_views: set[View] = set()
        self.equivocation_handled: set[View] = set()

    # ----------------------------------------------------------- parameters
    @property
    def vote_quorum(self) -> int:
        """Votes needed for a certificate: n/2 + 1 in Sync HotStuff."""
        return self.config.n // 2 + 1

    # --------------------------------------------------------------- startup
    def start(self) -> None:
        self.blame_timer.start(4 * self.config.delta)
        if self.is_leader(self.v_cur):
            self.after(0.0, self._propose_next, label="shs:propose")

    # --------------------------------------------------------------- leader
    def _propose_next(self) -> None:
        if self.crashed or self.in_view_change or not self.is_leader(self.v_cur):
            return
        if self.leader_chain_tip.height >= self.config.target_height:
            return
        parent = self.leader_chain_tip
        block = make_block(parent, self.pid, self.v_cur, parent.height + 1, self.next_batch())
        self.store_block(block)
        payload = {"block": block, "cert": self.certs.get(parent.block_hash)}
        message = self.sign_message(
            MessageType.SHS_PROPOSE, payload, view=self.v_cur, round_number=block.height
        )
        self.broadcast(message)
        self.stats.proposals_made += 1
        self.leader_chain_tip = block

    # --------------------------------------------------------------- dispatch
    def on_message(self, sender: int, message: Any) -> None:
        if not isinstance(message, ProtocolMessage):
            return
        handlers = {
            MessageType.SHS_PROPOSE: self._on_propose,
            MessageType.SHS_VOTE: self._on_vote,
            MessageType.BLAME: self._on_blame,
            MessageType.BLAME_QC: self._on_blame_qc,
            MessageType.SHS_STATUS: self._on_status,
            MessageType.SYNC_REQUEST: self._on_sync_request,
            MessageType.SYNC_RESPONSE: self._on_sync_response,
        }
        handler = handlers.get(message.msg_type)
        if handler is not None:
            handler(message)

    # ------------------------------------------------------------- proposals
    def _on_propose(self, message: ProtocolMessage) -> None:
        if message.view != self.v_cur or self.in_view_change:
            return
        if message.sender != self.leader_of(message.view):
            return
        if not self.verify_signed_message(message):
            return
        payload = message.data
        if not isinstance(payload, dict):
            return
        block = payload.get("block")
        cert = payload.get("cert")
        if not isinstance(block, Block):
            return
        self._record_proposal(message, block)
        if self.v_cur in self.equivocation_handled:
            return
        cert_ok = False
        cert_block: Optional[Block] = None
        if isinstance(cert, QuorumCertificate):
            cert_ok = self.verify_quorum_certificate(cert)
            cert_block = cert.block
            if cert_ok and cert_block is not None:
                self.store_block(cert_block)
                self.certs.setdefault(cert_block.block_hash, cert)
        self.store_block(block)
        if not self.blocks.has_ancestry(block):
            return
        extends_lock = self.blocks.extends(block, self.b_lock)
        justified_switch = (
            cert_ok and cert_block is not None and cert_block.height >= self.b_lock.height
        )
        if not extends_lock and not justified_switch:
            return
        if block.block_hash in self.voted_blocks:
            return
        self.voted_blocks.add(block.block_hash)
        self.b_lock = block
        self.stats.proposals_received += 1
        vote = self.sign_message(
            MessageType.SHS_VOTE, block.block_hash, view=self.v_cur, round_number=block.height
        )
        self.stats.votes_sent += 1
        self._send_vote(vote)
        self.commit_timers.start(
            block.block_hash,
            2 * self.config.delta,
            lambda b=block: self._commit_on_timer(b),
        )
        if block.height >= self.config.target_height:
            self.blame_timer.cancel()
        else:
            self.blame_timer.start(4 * self.config.delta)

    def _send_vote(self, vote: ProtocolMessage) -> None:
        """Disseminate a vote according to the configured forwarding mode."""
        if self.vote_forwarding == "full":
            self.broadcast(vote)
            return
        # Partial forwarding: one-hop multicast to neighbours plus a direct
        # unicast to the leader so it can always assemble the certificate.
        self.network.multicast_neighbors(self.pid, vote)
        leader = self.leader_of(self.v_cur)
        if leader != self.pid:
            self.send(leader, vote)
        # The sender counts its own vote locally.
        self.deliver(self.pid, vote)

    def _record_proposal(self, message: ProtocolMessage, block: Block) -> None:
        key = (message.view, block.height)
        per_height = self.proposals_seen.setdefault(key, {})
        per_height[block.block_hash] = message
        if len(per_height) >= 2:
            self._handle_equivocation(message.view)

    def _commit_on_timer(self, block: Block) -> None:
        if self.crashed:
            return
        self.commit_chain(block)

    # ----------------------------------------------------------------- votes
    def _on_vote(self, message: ProtocolMessage) -> None:
        if message.view != self.v_cur:
            return
        block_hash = message.data
        if not isinstance(block_hash, str):
            return
        if block_hash in self.certs:
            # A certificate already exists; no need to verify further votes.
            return
        if not self.verify_signed_message(message):
            return
        per_block = self.votes.setdefault(block_hash, {})
        per_block[message.sender] = message
        if len(per_block) < self.vote_quorum:
            return
        block = self.blocks.get(block_hash)
        cert = make_qc(list(per_block.values())[: self.vote_quorum], block=block)
        self.certs[block_hash] = cert
        self.stats.certificates_formed += 1
        if self.is_leader(self.v_cur) and block_hash == self.leader_chain_tip.block_hash:
            self.after(self.config.block_interval, self._propose_next, label="shs:propose")

    # ----------------------------------------------------------- view change
    def _handle_equivocation(self, view: View) -> None:
        if view in self.equivocation_handled:
            return
        self.equivocation_handled.add(view)
        self.stats.equivocations_detected += 1
        self.commit_timers.cancel_all()
        self._send_blame(view)

    def _on_blame_timer(self) -> None:
        if self.crashed or self.in_view_change:
            return
        self._send_blame(self.v_cur)

    def _send_blame(self, view: View) -> None:
        if view != self.v_cur or view in self.blamed_views:
            return
        blame = self.sign_message(MessageType.BLAME, None, view=view)
        self.blamed_views.add(view)
        self.blames.setdefault(view, {})[self.pid] = blame
        self.stats.blames_sent += 1
        self.broadcast(blame)
        self._check_blame_quorum(view)

    def _on_blame(self, message: ProtocolMessage) -> None:
        if message.view != self.v_cur:
            return
        if not self.verify_signed_message(message):
            return
        self.blames.setdefault(message.view, {})[message.sender] = message
        self._check_blame_quorum(message.view)

    def _check_blame_quorum(self, view: View) -> None:
        blames = self.blames.get(view, {})
        if len(blames) < self.config.quorum:
            return
        if view != self.v_cur or view in self.quit_views:
            return
        blame_qc = make_view_qc(list(blames.values())[: self.config.quorum])
        message = self.sign_message(MessageType.BLAME_QC, blame_qc, view=view)
        self.broadcast(message)
        self._quit_view(view)

    def _on_blame_qc(self, message: ProtocolMessage) -> None:
        if message.view != self.v_cur:
            return
        if not self.verify_signed_message(message):
            return
        qc = message.data
        if not isinstance(qc, QuorumCertificate) or qc.cert_type != MessageType.BLAME:
            return
        if not self.verify_view_quorum_certificate(qc):
            return
        self._quit_view(message.view)

    def _quit_view(self, view: View) -> None:
        if view != self.v_cur or view in self.quit_views:
            return
        self.quit_views.add(view)
        self.in_view_change = True
        self.commit_timers.cancel_all()
        self.blame_timer.cancel()
        block, cert = self._highest_certified()
        status = self.sign_message(
            MessageType.SHS_STATUS, {"block": block, "cert": cert}, view=view
        )
        self.broadcast(status)
        self.after(
            2 * self.config.delta, lambda: self._start_new_view(view), label="shs:new-view"
        )

    def _on_status(self, message: ProtocolMessage) -> None:
        if not self.verify_signed_message(message):
            return
        payload = message.data
        if not isinstance(payload, dict):
            return
        block = payload.get("block")
        cert = payload.get("cert")
        if isinstance(block, Block):
            self.store_block(block)
        if isinstance(cert, QuorumCertificate) and cert.block is not None:
            if self.verify_quorum_certificate(cert):
                self.store_block(cert.block)
                self.certs.setdefault(cert.block.block_hash, cert)

    def _sync_tip_certificate(self, tip: Block) -> Optional[QuorumCertificate]:
        """Serve the vote certificate for a caught-up tip, if we hold one."""
        return self.certs.get(tip.block_hash)

    def _highest_certified(self) -> tuple[Block, Optional[QuorumCertificate]]:
        """The highest block for which this node holds a certificate."""
        best: Optional[Block] = None
        best_cert: Optional[QuorumCertificate] = None
        for block_hash, cert in self.certs.items():
            block = self.blocks.get(block_hash)
            if block is None or not self.blocks.has_ancestry(block):
                continue
            if best is None or block.height > best.height:
                best = block
                best_cert = cert
        if best is None:
            return self.blocks.genesis, None
        return best, best_cert

    def _start_new_view(self, old_view: View) -> None:
        if self.v_cur != old_view:
            return
        self.v_cur = old_view + 1
        self.in_view_change = False
        self.stats.view_changes_completed += 1
        if self.hooks is not None:
            self.hooks.view_change(self.pid, self.v_cur, self.sim.now)
        self.blame_timer.start(8 * self.config.delta)
        if self.is_leader(self.v_cur):
            block, _ = self._highest_certified()
            # A new leader may hold a lock above its highest certificate —
            # with OptSync's 3n/4+1 quorum and partial vote forwarding,
            # non-leader nodes can end a view with no certificate at all.
            # Extending only the certified block would then fork away from
            # every correct node's lock and no proposal would ever gather
            # votes again (a livelock).  The leader's own lock is a block
            # every correct node also locked (it was flooded), so extending
            # it is safe and restores progress.
            if self.blocks.has_ancestry(self.b_lock) and self.b_lock.height > block.height:
                block = self.b_lock
            self.leader_chain_tip = block
            self.after(
                2 * self.config.delta, self._propose_next, label="shs:new-view-propose"
            )

    # ---------------------------------------------------------------- status
    def describe(self) -> Dict[str, Any]:
        """A snapshot of the replica's protocol state."""
        return {
            "pid": self.pid,
            "view": self.v_cur,
            "locked_height": self.b_lock.height,
            "committed_height": self.committed_height,
            "certificates": len(self.certs),
            "blocks_committed": self.stats.blocks_committed,
            "view_changes": self.stats.view_changes_completed,
        }
