"""OptSync baseline (Shrestha et al., CCS 2020), simplified.

OptSync adds optimistic responsiveness to synchronous SMR: when more than
3n/4 nodes vote, a block commits after 2δ (actual network delay) instead
of waiting for the synchronous bound.  For the energy analysis the salient
difference from Sync HotStuff is the larger quorum: every node must verify
3n/4 + 1 vote signatures per block instead of n/2 + 1, which is why the
paper finds Sync HotStuff already more energy-efficient than OptSync and
EESMR better than both (Section 6, "Let δ be the actual network speed...").

The implementation reuses the Sync HotStuff machinery and overrides the
certificate quorum and the (shorter) responsive commit delay.
"""

from __future__ import annotations

from repro.core.baselines.sync_hotstuff import SyncHotStuffReplica
from repro.core.blocks import Block


class OptSyncReplica(SyncHotStuffReplica):
    """An OptSync node: responsive quorum of 3n/4 + 1 votes."""

    protocol_name = "optsync"

    #: Fraction of the responsive commit delay relative to Δ (2δ with δ ≪ Δ).
    RESPONSIVE_COMMIT_FRACTION = 0.5

    @property
    def vote_quorum(self) -> int:
        """Votes needed for a responsive certificate: ⌊3n/4⌋ + 1."""
        return (3 * self.config.n) // 4 + 1

    def _on_propose(self, message) -> None:  # type: ignore[override]
        super()._on_propose(message)

    def _commit_delay(self) -> float:
        """Responsive commits happen after ~2δ rather than 2Δ."""
        return 2 * self.config.delta * self.RESPONSIVE_COMMIT_FRACTION

    def _on_vote(self, message) -> None:  # type: ignore[override]
        """Collect votes; on a responsive quorum, shorten the commit timer."""
        super()._on_vote(message)
        block_hash = message.data
        if not isinstance(block_hash, str):
            return
        cert = self.certs.get(block_hash)
        if cert is None:
            return
        block = self.blocks.get(block_hash)
        if block is None:
            return
        if block_hash in self.commit_timers.running_keys():
            # Responsive path: replace the synchronous wait with the 2δ wait.
            self.commit_timers.start(
                block_hash,
                self._commit_delay(),
                lambda b=block: self._commit_on_timer(b),
            )
