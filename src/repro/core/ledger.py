"""Committed logs and cross-node safety checking.

Each replica owns a :class:`CommittedLog` — its linearizable log of
committed blocks indexed by height.  The :class:`SafetyChecker` compares
the logs of the *correct* nodes after a run and asserts the SMR safety
property of Definition 2.1: for any log position, any two correct nodes
that have committed a block at that position committed the same block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.blocks import Block, BlockStore


class SafetyViolation(AssertionError):
    """Raised when two correct nodes committed conflicting blocks."""


@dataclass
class CommitRecord:
    """Bookkeeping for one committed block."""

    block: Block
    committed_at: float
    view: int


class CommittedLog:
    """A single node's committed chain, indexed by height."""

    def __init__(self, node_id: int, store: BlockStore) -> None:
        self.node_id = node_id
        self.store = store
        self._by_height: Dict[int, CommitRecord] = {}
        self.commit_order: List[str] = []

    def __len__(self) -> int:
        return len(self._by_height)

    def __contains__(self, block_hash: str) -> bool:
        return any(rec.block.block_hash == block_hash for rec in self._by_height.values())

    @property
    def highest_height(self) -> int:
        """Height of the highest committed block (0 when only genesis)."""
        return max(self._by_height, default=0)

    def block_at(self, height: int) -> Optional[Block]:
        """The committed block at ``height`` or ``None``."""
        record = self._by_height.get(height)
        return record.block if record else None

    def commit(self, block: Block, now: float, view: int) -> List[Block]:
        """Commit ``block`` and all its not-yet-committed ancestors.

        Returns the newly committed blocks in chain order.  Committing a
        block that conflicts with an existing commit at the same height
        raises :class:`SafetyViolation` — a correct replica must never do
        that, so surfacing it loudly turns protocol bugs into test failures.

        The walk stops at the first ancestor that is already committed at
        its height: everything below it was conflict-checked when that
        ancestor was committed, so re-walking to genesis on every commit
        (O(height) per commit, O(height²) per run) is unnecessary.  A
        conflicting ancestor *above* the stop point still raises, exactly
        as the full walk did.
        """
        pending: List[Block] = []
        anchored = False
        for ancestor in self.store.iter_ancestors(block):
            if ancestor.is_genesis:
                anchored = True
                break
            existing = self._by_height.get(ancestor.height)
            if existing is not None:
                if existing.block.block_hash != ancestor.block_hash:
                    raise SafetyViolation(
                        f"node {self.node_id} tried to commit {ancestor.short_hash()} at "
                        f"height {ancestor.height} over {existing.block.short_hash()}"
                    )
                anchored = True
                break
            pending.append(ancestor)
        if not anchored:
            raise KeyError(f"chain of {block.short_hash()} has missing ancestors")
        newly_committed: List[Block] = []
        for ancestor in reversed(pending):
            self._by_height[ancestor.height] = CommitRecord(ancestor, now, view)
            self.commit_order.append(ancestor.block_hash)
            newly_committed.append(ancestor)
        return newly_committed

    def committed_blocks(self) -> List[Block]:
        """All committed blocks in height order."""
        return [self._by_height[h].block for h in sorted(self._by_height)]

    def committed_command_ids(self) -> List[str]:
        """Command ids in commit (height) order — the linearizable log."""
        ids: List[str] = []
        for block in self.committed_blocks():
            ids.extend(block.batch.command_ids)
        return ids

    def commit_latency(self, block_hash: str, proposed_at: float) -> Optional[float]:
        """Latency between a proposal time and this node's commit of it."""
        for record in self._by_height.values():
            if record.block.block_hash == block_hash:
                return record.committed_at - proposed_at
        return None


@dataclass
class SafetyReport:
    """Result of comparing correct nodes' committed logs."""

    consistent: bool
    common_prefix_height: int
    max_height: int
    details: List[str] = field(default_factory=list)


class SafetyChecker:
    """Compares committed logs across nodes (Definition 2.1 safety)."""

    def __init__(self, logs: Dict[int, CommittedLog], faulty: Iterable[int] = ()) -> None:
        self.logs = logs
        self.faulty = set(faulty)

    def correct_logs(self) -> Dict[int, CommittedLog]:
        """Logs of the correct nodes only."""
        return {nid: log for nid, log in self.logs.items() if nid not in self.faulty}

    def check(self) -> SafetyReport:
        """Verify agreement at every height where at least two correct nodes committed."""
        correct = self.correct_logs()
        details: List[str] = []
        consistent = True
        max_height = max((log.highest_height for log in correct.values()), default=0)
        common_prefix = 0
        for height in range(1, max_height + 1):
            blocks = {
                nid: log.block_at(height)
                for nid, log in correct.items()
                if log.block_at(height) is not None
            }
            distinct = {b.block_hash for b in blocks.values()}
            if len(distinct) > 1:
                consistent = False
                details.append(
                    f"height {height}: conflicting commits "
                    + ", ".join(f"{nid}:{b.short_hash()}" for nid, b in blocks.items())
                )
            elif len(blocks) == len(correct) and len(distinct) == 1:
                common_prefix = height
        return SafetyReport(
            consistent=consistent,
            common_prefix_height=common_prefix,
            max_height=max_height,
            details=details,
        )

    def assert_safe(self) -> SafetyReport:
        """Raise :class:`SafetyViolation` when any height disagrees."""
        report = self.check()
        if not report.consistent:
            raise SafetyViolation("; ".join(report.details))
        return report

    def min_committed_height(self) -> int:
        """The smallest highest-committed-height over correct nodes (liveness floor)."""
        correct = self.correct_logs()
        return min((log.highest_height for log in correct.values()), default=0)
