#!/usr/bin/env python3
"""View-change walkthrough: an equivocating leader is detected and replaced.

The run pins the Byzantine behaviour to a specific round so the output
shows the full story the paper's Section 3 tells: blocks committed under
the faulty leader before it misbehaves stay committed (unique
extensibility), the equivocation is detected by every correct node within
Delta, the view change converts the implicit "votes in the head" into
explicit certificates, and the new leader finishes the workload.

Run with:  python examples/view_change_demo.py
"""

from repro import DeploymentSpec, FaultPlan, Session
from repro.eval.tables import format_table
from repro.session import CallbackObserver


def run_with_narration(spec: DeploymentSpec):
    """Run through a session with an observer narrating the protocol story."""
    observer = CallbackObserver(
        on_view_change=lambda pid, view, t: print(
            f"   t={t:6.1f}  node {pid} completes the view change into view {view}"
        ),
        on_block_commit=lambda pid, block, view, t: (
            print(f"   t={t:6.1f}  node {pid} commits height {block.height} (view {view})")
            if pid == 1  # one narrator node is enough
            else None
        ),
    )
    session = Session.from_spec(spec, observers=[observer])
    return session.run().finish()


def describe(result, label: str) -> None:
    print(f"-- {label} --")
    rows = []
    for pid, snap in sorted(result.replica_snapshots.items()):
        rows.append(
            [
                pid,
                snap.get("view", "-"),
                snap.get("committed_height", "-"),
                snap.get("view_changes", "-"),
                "faulty" if pid in result.spec.fault_plan.faulty else "correct",
            ]
        )
    print(format_table(["node", "view", "committed", "view changes", "role"], rows))
    print(f"blames sent: {result.blames_sent}, equivocations detected: {result.equivocations_detected}")
    print(f"total correct-node energy: {result.correct_energy_mj:.1f} mJ")
    print()


def main() -> None:
    honest = run_with_narration(
        DeploymentSpec(protocol="eesmr", n=7, f=2, k=3, target_height=4, seed=9)
    )
    describe(honest, "Honest leader: 4 blocks, no view change")

    equivocation = run_with_narration(
        DeploymentSpec(
            protocol="eesmr",
            n=7,
            f=2,
            k=3,
            target_height=4,
            seed=9,
            block_interval=6.0,  # let the first block commit before the attack
            fault_plan=FaultPlan(faulty=(0,), behaviour="equivocate", trigger_round=4),
        )
    )
    describe(equivocation, "Leader equivocates in round 4: view change to node 1")

    print("What to look for:")
    print(" * safety holds in both runs:", honest.safety.consistent and equivocation.safety.consistent)
    print(" * every correct node ends in view 2 after the attack")
    print(" * the committed height still reaches the workload target —")
    print("   blocks committed before the equivocation were not rolled back")
    print(
        " * the faulty run costs {:.1f}x more energy than the honest one — the price of one view change".format(
            equivocation.correct_energy_mj / honest.correct_energy_mj
        )
    )


if __name__ == "__main__":
    main()
