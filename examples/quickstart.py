#!/usr/bin/env python3
"""Quickstart: run EESMR on a simulated CPS cluster and inspect the result.

This is the smallest end-to-end use of the library through its one front
door, the session API: build a deployment spec, open a session, pause it
mid-run to look at live state, then run to quiescence and collect the
committed log, the safety report and the energy bill — the same
quantities the paper's evaluation reports.

Run with:  python examples/quickstart.py
"""

from repro import DeploymentSpec, Session
from repro.eval.tables import format_table


def main() -> None:
    spec = DeploymentSpec(
        protocol="eesmr",
        n=7,               # seven CPS nodes
        f=2,               # tolerate two Byzantine nodes
        k=3,               # each node's BLE advertisement reaches 3 neighbours
        target_height=5,   # agree on five blocks
        command_payload_bytes=16,
        signature_scheme="rsa-1024",
        seed=42,
    )
    session = Session.from_spec(spec)

    # Pause once the first block commits anywhere and peek at live state —
    # any point between two events is a valid pause point.
    session.run_until(pred=lambda s: any(r.committed_height >= 1 for r in s.replicas.values()))
    live = session.inspect()
    print(f"paused at t={live['now']:.1f}: heights={live['committed_heights']}, "
          f"{live['total_joules'] * 1000:.1f} mJ spent so far")
    print()

    result = session.run().finish()

    print("== EESMR quickstart ==")
    print(f"nodes                     : {spec.n} (f = {spec.f}, k = {spec.k})")
    print(f"synchrony bound Delta     : {result.config.delta:.1f} s")
    print(f"blocks committed (all)    : {result.committed_blocks}")
    print(f"safety (Definition 2.1)   : {'OK' if result.safety.consistent else 'VIOLATED'}")
    print(f"view changes              : {result.view_changes}")
    print(f"signatures / verifications: {result.sign_operations} / {result.verify_operations}")
    print()
    print("Energy (correct nodes):")
    print(f"  total                   : {result.correct_energy_mj:.1f} mJ")
    print(f"  per consensus unit      : {result.energy_per_block_mj:.1f} mJ")
    print(f"  leader per unit         : {result.leader_energy_per_block_mj:.1f} mJ")
    print(f"  replica per unit (mean) : {result.replica_energy_per_block_mj:.1f} mJ")
    print()
    rows = [[category, f"{joules * 1000:.1f}"] for category, joules in result.energy.breakdown.as_dict().items()]
    print(format_table(["category", "mJ"], rows))
    print()
    print("Per-node committed heights:", result.committed_heights)


if __name__ == "__main__":
    main()
