#!/usr/bin/env python3
"""Energy-aware protocol selection for a CPS deployment (Section 4 in practice).

The paper's energy framework is meant to be used by deployers: model the
candidate protocols' per-consensus cost as functions of the system
parameters, then pick the protocol that minimises expected energy for the
expected fault rate.  This example walks through that decision for a fleet
of gateways that could either run EESMR among themselves over WiFi or ship
everything to a trusted control server over 4G.

Run with:  python examples/protocol_selection.py
"""

from repro.crypto.energy_costs import RSA_1024, best_for_leader_pattern
from repro.energy.analysis import compare_protocols, energy_fault_bound
from repro.energy.feasibility import feasible_region
from repro.energy.model import parameters_from_components
from repro.energy.protocol_costs import (
    eesmr_cost_model,
    sync_hotstuff_cost_model,
    trusted_baseline_cost_model,
)
from repro.eval.tables import format_table
from repro.radio.media import lte_medium, wifi_medium


def main() -> None:
    n, f, payload = 10, 4, 1024
    params = parameters_from_components(
        n=n,
        f=f,
        message_bytes=payload,
        medium=wifi_medium(),
        signature=RSA_1024,
        external_medium=lte_medium(),
        k=n - 1,          # WiFi broadcast: everyone overhears every transmission
        d=n - 1,
    )

    print(f"Deployment: n={n}, f={f}, payload={payload} B, WiFi locally, 4G to the control server\n")

    # 1. Which signature scheme should the leader-sign / replicas-verify pattern use?
    scheme = best_for_leader_pattern(verifiers=n - 1)
    print(f"1. Signature scheme for one-signer/{n - 1}-verifiers: {scheme.name} "
          f"(sign {scheme.sign_joules} J, verify {scheme.verify_joules} J)\n")

    # 2. Per-consensus cost of each candidate protocol.
    models = {
        "EESMR": eesmr_cost_model(),
        "Sync HotStuff": sync_hotstuff_cost_model(),
        "Trusted baseline (4G)": trusted_baseline_cost_model(),
    }
    rows = [
        [name, model.best_case(params), model.view_change(params), model.worst_case(params)]
        for name, model in models.items()
    ]
    print("2. Per-consensus energy (Joules, all correct nodes):")
    print(format_table(["protocol", "best case", "view change", "worst case"], rows))
    print()

    # 3. EESMR vs Sync HotStuff: how often may the leader fail before EESMR loses?
    duel = compare_protocols(eesmr_cost_model(), sync_hotstuff_cost_model(), params)
    print("3. EESMR vs Sync HotStuff:")
    print(f"   best-case winner      : {duel.best_case_winner} ({duel.best_case_advantage:.2f}x cheaper)")
    print(f"   EESMR keeps winning up to a view-change ratio of {duel.max_view_change_ratio:.2%}\n")

    # 4. EESMR vs the trusted baseline: the energy-fault bound (equation EB).
    baseline = trusted_baseline_cost_model().best_case(params)
    eesmr = eesmr_cost_model()
    f_e = energy_fault_bound(baseline, eesmr.best_case(params), eesmr.view_change(params))
    print("4. Energy-fault tolerance against the 4G baseline (equation EB):")
    print(f"   EESMR absorbs up to {f_e:.2f} adversarially forced view changes per")
    print("   consensus unit before the trusted baseline becomes cheaper.\n")

    # 5. Where does the decision flip as the fleet grows? (Figure 1)
    region = feasible_region(
        message_sizes=(256, payload, 4096),
        node_counts=tuple(range(4, 41, 2)),
    )
    print("5. Feasible region (EESMR over WiFi vs trusted baseline over 4G):")
    rows = [
        [row["message_bytes"], row["crossover_n"] if row["crossover_n"] is not None else "never",
         f"{row['favourable_fraction']:.0%}"]
        for row in region.summary_rows()
    ]
    print(format_table(["payload (B)", "EESMR loses from n =", "EESMR-favourable share"], rows))
    print()
    verdict = "EESMR" if region.is_favourable(payload, n) else "the trusted baseline"
    print(f"Verdict for this deployment (m={payload} B, n={n}): run {verdict}.")


if __name__ == "__main__":
    main()
