#!/usr/bin/env python3
"""Precision-agriculture scenario: a field of soil sensors agreeing on readings.

The paper's introduction motivates EESMR with exactly this setting (the DHS
precision-agriculture report): a partially connected network of low-power
sensors must agree on a shared log of readings even if some sensors are
compromised, and the protocol's energy overhead determines how long the
deployment survives on battery.

The script runs the same field twice — once with an honest coordinator and
once where the coordinator is compromised and stops proposing — and
compares committed readings, energy per reading and projected battery life.

Run with:  python examples/farm_sensor_network.py
"""

from repro import DeploymentSpec, FaultPlan, Session
from repro.eval.workloads import SensorReadingWorkload
from repro.session import EnergyTimelineObserver

#: A common 18650-class battery for field sensors, in Joules.
BATTERY_CAPACITY_J = 10_000.0


def run_field(fault_plan: FaultPlan, label: str) -> None:
    n_sensors = 10
    workload = SensorReadingWorkload(n_sensors=n_sensors, reading_bytes=16, seed=7)
    epochs = 4

    spec = DeploymentSpec(
        protocol="eesmr",
        n=n_sensors,
        f=3,
        k=4,                      # each sensor's radio reaches its 4 ring neighbours
        target_height=epochs,     # one block per measurement epoch
        batch_size=n_sensors,     # a block carries one reading per sensor
        command_payload_bytes=16,
        signature_scheme="rsa-1024",
        fault_plan=fault_plan,
        seed=2026,
    )
    # The energy-timeline observer samples the cluster ledger at every
    # commit, giving the per-epoch energy profile battery planning needs.
    timeline = EnergyTimelineObserver()
    result = Session.from_spec(spec, observers=[timeline]).run().finish()

    per_epoch_mj = result.energy_per_block_mj / max(1, 1)
    per_node_per_epoch_mj = result.energy_per_block_mj / (n_sensors - len(fault_plan.faulty))
    # One agreement per hour, as in the paper's closing observation.
    epochs_per_battery = BATTERY_CAPACITY_J / (per_node_per_epoch_mj / 1000.0)

    print(f"== {label} ==")
    print(f"committed measurement epochs : {result.committed_blocks} (target {epochs})")
    print(f"safety                       : {'OK' if result.safety.consistent else 'VIOLATED'}")
    print(f"view changes                 : {result.view_changes}")
    print(f"energy per epoch (all nodes) : {result.energy_per_block_mj:.1f} mJ")
    print(f"energy per epoch per sensor  : {per_node_per_epoch_mj:.1f} mJ")
    print(f"epochs per battery charge    : {epochs_per_battery:,.0f}")
    print(f"(~{epochs_per_battery / 24:.0f} days at one agreement per hour)")
    first_commit = next((t for t, label, _ in timeline.samples if label.startswith("commit")), None)
    if first_commit is not None:
        early = timeline.joules_between(0.0, first_commit)
        print(f"energy until first agreement : {early * 1000:.1f} mJ (cluster-wide)")
    print()


def main() -> None:
    print("Soil-moisture sensor field: 10 sensors, BLE k-casts, RSA-1024 signatures\n")
    run_field(FaultPlan(), "Honest coordinator (steady state only)")
    run_field(
        FaultPlan(faulty=(0,), behaviour="silent_leader"),
        "Compromised coordinator (stops proposing; view change to sensor 1)",
    )
    print(
        "The second run pays the view-change premium once and then returns to\n"
        "the cheap steady state under the new coordinator — the trade-off the\n"
        "paper's Section 4 analysis argues is the right one when faults are rare."
    )


if __name__ == "__main__":
    main()
