"""Setuptools shim for environments that cannot use PEP 517 editable installs."""
from setuptools import setup

setup()
